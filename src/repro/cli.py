"""Command-line interface (installed as ``repro-map``).

Subcommands::

    repro-map list                         # benchmarks, kernels, fabrics
    repro-map map --benchmark crc32 --cgra 4x4
    repro-map map --benchmark fft --arch memory_column_mesh --cgra 4x4
    repro-map map --benchmark aes --cgra 4x4 --opt-level O2
    repro-map map --benchmark cfd --cgra 10x10 --approach heuristic \
        --budget 10 --seed 7
    repro-map map --benchmark gsm --cgra 4x4 --approach portfolio
    repro-map map --kernel-example dot_product --cgra 5x5 --simulate
    repro-map map --kernel-file my_loop.k --cgra 8x8 --json mapping.json
    repro-map map --benchmark gsm --approach heuristic --strategy refine
    repro-map map --benchmark crc32 --remote http://127.0.0.1:8780
                                           # compile on a repro-serve daemon
    repro-map map --benchmark aes --trace trace.json --metrics
                                           # Chrome trace + metrics summary
    repro-map arch list                    # architecture presets
    repro-map arch show mul_sparse_checkerboard --size 4x4
    repro-map arch dump memory_column_mesh --size 4x4 --out fabric.json
    repro-map table1                       # paper Table I / II
    repro-map table3 --sizes 2x2 5x5       # paper Table III
    repro-map fig5 --sizes 2x2 5x5 10x10   # paper Fig. 5
    repro-map ablation --benchmarks aes    # design-choice ablation
    repro-map sweep --sizes 2x2 5x5 --jobs 4 --cache results.jsonl
                                           # parallel batch over the suite
    repro-map sweep --arch mul_sparse_checkerboard --sizes 4x4
    repro-map sweep --opt-level O2 --sizes 4x4
    repro-map profile aes --cgra 4x4       # per-phase timing/counter JSON
    repro-map profile gsm cfd --approach satmapit --json profile.json
    repro-map archsweep --benchmarks bitcount --size 4x4
                                           # II across fabrics
    repro-map optsweep --benchmarks aes crc32 --size 4x4
                                           # II / compile time across O0..O2
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Iterator, Optional, Sequence, Tuple

from repro.arch.spec import ArchSpec, preset_names, resolve_arch
from repro.core.engine import (
    ENGINE_DESCRIPTIONS,
    ENGINE_NAMES,
    create_engine,
    engine_choices,
)
from repro.experiments import (
    ablation,
    arch_sweep,
    fig5,
    opt_sweep,
    table1_table2,
    table3,
)
from repro.experiments.batch import BatchRunner, build_cases
from repro.experiments.runner import (
    build_cgra_from_arch,
    normalize_approach,
    parse_size,
)
from repro.frontend import EXAMPLE_KERNELS, extract_dfg
from repro.obs import logjson, metrics
from repro.obs import trace as obs_trace
from repro.opt.pipeline import MAX_OPT_LEVEL, pass_names
from repro.reporting.tables import Table, format_seconds
from repro.sim.executor import run_and_compare
from repro.sim.machine import DataMemory
from repro.workloads.suite import benchmark_names, load_benchmark, spec


#: --solver-backend choice surface (map / profile / sweep share it)
SOLVER_BACKENDS = (
    ("arena", "pure-Python flat-arena CDCL kernel (default)"),
    ("native", "fastest available compiled tier: C, numpy or arena"),
    ("native-c", "force the cffi-compiled C kernel (errors if unbuildable)"),
    ("numpy", "force the numpy-vectorized tier"),
    ("reference", "pre-rewrite kernel (differential-testing oracle)"),
)
SOLVER_BACKEND_CHOICES = [name for name, _ in SOLVER_BACKENDS]


def _catalog() -> Iterator[Tuple[str, str, str]]:
    """Everything mappable or targetable, as (kind, name, details) rows."""
    for name in benchmark_names():
        entry = spec(name)
        yield ("benchmark", name,
               f"{entry.suite}, {entry.num_nodes} nodes, "
               f"RecII {entry.rec_ii}")
    yield ("benchmark", "running_example", "paper Fig. 2 DFG")
    for name in sorted(EXAMPLE_KERNELS):
        yield ("kernel", name, "front-end source (--kernel-example)")
    for name in preset_names():
        yield ("arch preset", name, "size-parametric fabric (--arch)")
    for name in pass_names():
        yield ("opt pass", name, "pre-mapping DFG pass (--passes)")
    for name in ENGINE_NAMES:
        yield ("approach", name,
               f"{ENGINE_DESCRIPTIONS[name]} (--approach)")
    for name, details in SOLVER_BACKENDS:
        yield ("solver backend", name, f"{details} (--solver-backend)")


def _cmd_list(_args: argparse.Namespace) -> int:
    table = Table(
        headers=["Kind", "Name", "Details"],
        title="Benchmarks, kernels, fabrics and passes known to repro-map",
    )
    for kind, name, details in _catalog():
        table.add_row(kind, name, details)
    print(table.render())
    print("\n`--arch` also accepts a path to an arch-spec JSON file; "
          f"`--opt-level` accepts O0..O{MAX_OPT_LEVEL}.")
    return 0


def _load_dfg(args: argparse.Namespace):
    """Resolve the requested DFG plus (optionally) simulation metadata."""
    if args.kernel_file:
        with open(args.kernel_file) as handle:
            program = extract_dfg(handle.read(), name=args.kernel_file)
        return program.dfg, program
    if args.kernel_example:
        program = extract_dfg(EXAMPLE_KERNELS[args.kernel_example],
                              name=args.kernel_example)
        return program.dfg, program
    return load_benchmark(args.benchmark), None


def _remote_payload(args: argparse.Namespace) -> dict:
    """Translate the ``map`` option surface into a service payload."""
    payload: dict = {"cgra": args.cgra}
    if args.kernel_file:
        with open(args.kernel_file) as handle:
            payload["kernel"] = handle.read()
    elif args.kernel_example:
        payload["kernel"] = EXAMPLE_KERNELS[args.kernel_example]
    else:
        payload["benchmark"] = args.benchmark
    if args.arch:
        if args.arch.endswith(".json"):
            # the server cannot see local files: inline the spec content
            with open(args.arch, encoding="utf-8") as handle:
                payload["arch_spec"] = json.load(handle)
        else:
            payload["arch"] = args.arch
    payload["approach"] = "satmapit" if args.baseline else args.approach
    payload["opt_level"] = args.opt_level
    if args.passes:
        payload["opt_passes"] = list(args.passes)
    if args.solver_backend != "arena":
        payload["solver_backend"] = args.solver_backend
    if args.seed is not None:
        payload["seed"] = args.seed
    payload["budget_seconds"] = (args.budget if args.budget is not None
                                 else args.timeout)
    payload["strategy"] = args.strategy
    return payload


def _cmd_map_remote(args: argparse.Namespace) -> int:
    """`repro-map map --remote URL`: compile on a running repro-serve."""
    from repro.core.mapping import Mapping
    from repro.service.client import ServiceClient, ServiceError

    if args.simulate:
        print("error: --simulate is local-only; fetch the mapping with "
              "--json and simulate it locally", file=sys.stderr)
        return 2
    client = ServiceClient(args.remote)
    # Mint the distributed trace context up front: the client span below
    # and everything the daemon records for this job (spans, NDJSON
    # events, run-log records) share this one trace id -- submit() sends
    # it as the `traceparent` header.
    trace_id = obs_trace.current_trace_id() or obs_trace.new_trace_id()
    obs_trace.push_trace("client", trace_id)
    try:
        with obs_trace.span("client.map", remote=args.remote):
            job = client.submit(_remote_payload(args))
            job_id = job["id"]
            print(f"submitted {job_id} to {args.remote} "
                  f"(cache: {job.get('cache', 'miss')}, "
                  f"trace {job.get('trace_id', trace_id)})")
            if job["status"] not in ("done", "failed", "cancelled"):
                # follow the anytime stream; improvements print as they
                # land, stamped with the server's monotonic-anchored `ts`
                first_ts = None
                with obs_trace.span("client.stream", job=job_id):
                    for event in client.events(job_id):
                        ts = event.get("ts")
                        if first_ts is None and ts is not None:
                            first_ts = ts
                        offset = (f" [+{ts - first_ts:.3f}s]"
                                  if ts is not None and first_ts is not None
                                  else "")
                        if event["event"] == "improvement":
                            print(f"  improvement: II={event['ii']} "
                                  f"(mII {event['mii']}) at "
                                  f"{event['elapsed']:.3f}s" + offset)
            job = client.job(job_id)
    except (ServiceError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    finally:
        obs_trace.pop_trace()
    if job["status"] != "done":
        print(f"job {job['id']}: {job['status']}"
              + (f" ({job['error']})" if job.get("error") else ""))
        return 1
    result = job["result"]
    cached = " (served from store)" if result.get("cached") else ""
    print(f"status: {result['status']}, II={result['ii']} "
          f"(mII {result['mii']}), engine {result['engine_seconds']:.3f}s"
          + cached)
    if result.get("message"):
        print(result["message"])
    if result["status"] != "success":
        return 1
    mapping = Mapping.from_dict(result["mapping"])
    print()
    print(mapping.render_kernel())
    if args.json:
        with open(args.json, "w") as handle:
            handle.write(mapping.to_json())
        print(f"\nmapping written to {args.json}")
    return 0


def _cmd_map(args: argparse.Namespace) -> int:
    """Dispatch ``map``, wrapped in the opt-in observability surface."""
    if args.log_json:
        logjson.configure(args.log_json)
    if args.trace:
        obs_trace.enable()
    try:
        status = (_cmd_map_remote(args) if args.remote
                  else _cmd_map_local(args))
    finally:
        # emit the trace/metrics views even when the mapping failed --
        # failures are exactly when the observability output matters
        if args.trace:
            spans = obs_trace.write_chrome_trace(args.trace)
            print(f"\ntrace written to {args.trace} ({spans} span(s); "
                  f"open in Perfetto / chrome://tracing)")
        if args.metrics:
            from repro.perf.profile import render_metrics_table
            print()
            print(render_metrics_table(metrics.snapshot()).render())
    return status


def _cmd_map_local(args: argparse.Namespace) -> int:
    dfg, program = _load_dfg(args)
    cgra = build_cgra_from_arch(args.cgra, args.arch)
    fabric = "" if cgra.is_homogeneous else ", heterogeneous"
    approach = "satmapit" if args.baseline else args.approach
    print(f"Mapping {dfg.name!r} ({dfg.num_nodes} nodes, {dfg.num_edges} edges) "
          f"onto a {cgra.size_label} CGRA ({cgra.topology}{fabric}) "
          f"with the {normalize_approach(approach)} engine")

    opt_passes = tuple(args.passes) if args.passes else None
    mapper = create_engine(
        approach,
        cgra,
        timeout_seconds=args.timeout,
        budget_seconds=args.budget,
        seed=args.seed,
        opt_level=args.opt_level,
        opt_passes=opt_passes,
        solver_backend=args.solver_backend,
        strategy=args.strategy,
    )
    result = mapper.map(dfg)
    if result.opt is not None:
        print(result.opt.summary())
    print(result.summary())
    stats = result.stats or {}
    for outcome in stats.get("portfolio", ()):
        marker = "*" if outcome["engine"] == stats.get("winner") else " "
        seconds = outcome["total_seconds"]
        print(f"  {marker} {outcome['engine']}: {outcome['status']}"
              + (f" II={outcome['ii']}" if outcome["ii"] is not None else "")
              + (f" in {seconds:.3f}s" if seconds is not None else ""))
    if not result.success:
        return 1

    mapping = result.mapping
    print()
    print(mapping.render_kernel())
    print()
    stats = mapping.stats()
    for key, value in stats.items():
        print(f"  {key}: {value}")

    if args.simulate:
        memory = DataMemory()
        if program is not None and result.opt is not None:
            # rebind accumulator initial values etc. onto the optimized DFG
            program = program.remapped(result.opt)
        initial_values = program.initial_values if program is not None else None
        iterations = args.iterations
        run_and_compare(mapping, iterations=iterations, memory=memory,
                        initial_values=initial_values)
        print(f"\nsimulation: mapped execution matches the sequential "
              f"reference over {iterations} iterations")

    if args.json:
        with open(args.json, "w") as handle:
            handle.write(mapping.to_json())
        print(f"\nmapping written to {args.json}")
    return 0


def _cmd_arch(args: argparse.Namespace) -> int:
    """Inspect / export the declarative architecture specs."""
    if args.arch_command == "list":
        print("Architecture presets (size-parametric):")
        for name in preset_names():
            print(f"  {name}")
        print("\nAny `--arch` option also accepts a path to an arch-spec "
              "JSON file (see docs/architecture-spec.md).")
        return 0
    rows, cols = parse_size(args.size)
    arch_spec = resolve_arch(args.arch, rows, cols)
    if args.arch_command == "show":
        print(arch_spec.describe())
        return 0
    # dump: serialise, and prove the round trip before writing
    text = arch_spec.to_json()
    if ArchSpec.from_json(text) != arch_spec:
        print("error: arch spec does not round-trip through JSON")
        return 1
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")
        print(f"arch spec written to {args.out}")
    else:
        print(text)
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    """Profile benchmarks and emit the per-phase timing/counter JSON."""
    from repro.perf.profile import profile_benchmarks, render_profile_table

    for name in args.benchmarks:
        if name not in ("running_example", "example"):
            spec(name)  # fail early on typos
    sampling = False
    if args.sample:
        from repro.obs import profiler
        profiler.reset()
        sampling = profiler.start()
        if not sampling:
            print("note: --sample unavailable on this platform "
                  "(needs SIGPROF); per-phase timings only",
                  file=sys.stderr)
    records = profile_benchmarks(
        args.benchmarks,
        size=args.cgra,
        approach=normalize_approach(args.approach),
        timeout_seconds=args.timeout,
        arch=args.arch,
        opt_level=args.opt_level,
        opt_passes=tuple(args.passes) if args.passes else None,
        solver_backend=args.solver_backend,
        seed=args.seed,
    )
    table = render_profile_table(records, approach=args.approach,
                                 size=args.cgra,
                                 solver_backend=args.solver_backend)
    print(table.render())
    if sampling:
        from repro.obs import profiler
        profiler.stop()
        folded = profiler.render()
        total = sum(profiler.cumulative().values())
        print(f"\nsampling profile: {total} sample(s), "
              f"{profiler.interval() * 1000:.0f}ms CPU-time interval "
              f"(collapsed stacks, busiest first):")
        print(folded if folded else "  (no samples -- run too short)")
    text = json.dumps(records, indent=2)
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")
        print(f"\nprofile written to {args.json}")
    else:
        print(text)
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    """Run a (benchmark x size x approach) grid through the batch engine."""
    benchmarks = args.benchmarks if args.benchmarks else benchmark_names()
    for name in benchmarks:
        if name not in ("running_example", "example"):
            spec(name)  # fail early on typos
    sizes = list(args.sizes)
    for size in sizes:
        parse_size(size)
    if args.arch is not None:
        # fail fast on a typo'd preset / missing spec file instead of
        # spawning one doomed worker per grid case
        rows, cols = parse_size(sizes[0])
        arch_spec = resolve_arch(args.arch, rows, cols)
        if args.arch.endswith(".json"):
            # a spec file's dimensions override every requested size, so
            # one size is enough; more would re-run identical fabrics
            sizes = [arch_spec.size_label]
            print(f"note: --arch spec file fixes the array size to "
                  f"{arch_spec.size_label}; --sizes ignored")
    approaches = args.approaches
    opt_passes = tuple(args.passes) if args.passes else None
    cases = build_cases(benchmarks, sizes, approaches, args.timeout,
                        arch=args.arch, opt_level=args.opt_level,
                        opt_passes=opt_passes,
                        solver_backend=args.solver_backend, seed=args.seed)
    progress = None if args.quiet else print
    runner = BatchRunner(jobs=args.jobs, cache_path=args.cache,
                         progress=progress)
    report = runner.run(cases)

    arch_column = args.arch is not None
    opt_column = bool(cases and (cases[0].opt_level or cases[0].opt_passes))
    # --solver-backend is a scenario axis: surface it whenever the sweep
    # pins a non-default kernel or runs a stochastic (seeded) engine
    backend_column = args.solver_backend is not None
    seed_column = any(result.seed is not None for result in report.results)
    headers = ["Benchmark", "CGRA", "Approach", "Status", "II", "mII",
               "Time", "Space", "Total"]
    if seed_column:
        headers.insert(3, "Seed")
    if backend_column:
        headers.insert(3, "Backend")
    if opt_column:
        headers.insert(3, "Opt")
    if arch_column:
        headers.insert(2, "Arch")
    table = Table(
        headers=headers,
        title=f"Sweep -- {len(cases)} case(s), jobs={args.jobs}"
              + (f", cache={args.cache}" if args.cache else ""),
    )
    for result in report.results:
        cells = [
            result.benchmark,
            result.cgra_size,
            result.approach,
            result.status,
            result.ii,
            result.mii,
            format_seconds(result.time_phase_seconds),
            format_seconds(result.space_phase_seconds),
            format_seconds(result.total_seconds),
        ]
        if seed_column:
            cells.insert(3, result.seed if result.seed is not None else "-")
        if backend_column:
            cells.insert(3, result.solver_backend or "arena")
        if opt_column:
            cells.insert(3, result.opt_passes or f"O{result.opt_level}")
        if arch_column:
            cells.insert(2, result.arch or "-")
        table.add_row(*cells)
    print(table.render())
    print(report.summary())
    if args.csv:
        table.to_csv(args.csv)
        print(f"results written to {args.csv}")
    return 1 if report.errors else 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-map",
        description="Monomorphism-based CGRA mapping via space/time decoupling",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    list_parser = subparsers.add_parser("list", help="list available workloads")
    list_parser.set_defaults(handler=_cmd_list)

    map_parser = subparsers.add_parser("map", help="map a DFG onto a CGRA")
    source = map_parser.add_mutually_exclusive_group()
    source.add_argument("--benchmark", default="running_example",
                        help="name of a Table III benchmark or 'running_example'")
    source.add_argument("--kernel-example", choices=sorted(EXAMPLE_KERNELS),
                        help="one of the bundled front-end kernels")
    source.add_argument("--kernel-file", help="path to a kernel source file")
    map_parser.add_argument("--cgra", default="4x4", help="CGRA size, e.g. 4x4")
    map_parser.add_argument("--arch", default=None,
                            help="architecture preset name (see `repro-map "
                                 "arch list`) or arch-spec JSON path; a "
                                 "spec file's own size wins over --cgra")
    map_parser.add_argument("--timeout", type=float, default=60.0)
    map_parser.add_argument("--opt-level", default="O0",
                            help="pre-mapping DFG optimization level "
                                 f"(O0..O{MAX_OPT_LEVEL}, default O0)")
    map_parser.add_argument("--passes", nargs="+", default=None,
                            metavar="PASS",
                            help="explicit optimization pass list "
                                 "overriding --opt-level "
                                 f"(available: {', '.join(pass_names())})")
    map_parser.add_argument("--approach", default="monomorphism",
                            choices=engine_choices(),
                            help="mapping engine: monomorphism (exact, the "
                                 "paper's), satmapit (exact coupled "
                                 "baseline), heuristic (stochastic "
                                 "anytime), or portfolio (races all three)")
    map_parser.add_argument("--budget", type=float, default=None,
                            help="anytime budget in seconds for the "
                                 "heuristic engine / total budget for the "
                                 "portfolio (default: --timeout)")
    map_parser.add_argument("--seed", type=int, default=None,
                            help="RNG seed for the stochastic engines "
                                 "(default: REPRO_PROPERTY_SEED env var, "
                                 "then the built-in constant; see "
                                 "docs/mapping-engines.md)")
    map_parser.add_argument("--solver-backend", default="arena",
                            choices=SOLVER_BACKEND_CHOICES,
                            help="SAT kernel behind the exact engines "
                                 "(native = fastest available compiled "
                                 "tier, bit-identical to arena)")
    map_parser.add_argument("--strategy", default="ascend",
                            choices=["ascend", "refine"],
                            help="heuristic II sweep: ascend stops at the "
                                 "first (best) II; refine descends, "
                                 "streaming best-so-far improvements")
    map_parser.add_argument("--remote", default=None, metavar="URL",
                            help="compile on a running repro-serve instance "
                                 "instead of in-process (e.g. "
                                 "http://127.0.0.1:8780)")
    map_parser.add_argument("--baseline", action="store_true",
                            help="use the SAT-MapIt-style coupled baseline "
                                 "(alias for --approach satmapit)")
    map_parser.add_argument("--simulate", action="store_true",
                            help="run the mapping on the cycle-level simulator "
                                 "and compare against the reference")
    map_parser.add_argument("--iterations", type=int, default=8,
                            help="loop iterations to simulate")
    map_parser.add_argument("--json", help="write the mapping to a JSON file")
    map_parser.add_argument("--trace", default=None, metavar="OUT",
                            help="record engine/phase spans and write a "
                                 "Chrome trace-event JSON to OUT (open in "
                                 "Perfetto; see docs/observability.md)")
    map_parser.add_argument("--metrics", action="store_true",
                            help="print the in-process metrics registry "
                                 "(the same series GET /metrics exposes) "
                                 "after mapping")
    map_parser.add_argument("--log-json", default=None, metavar="PATH",
                            help="append structured JSONL run records to "
                                 "PATH (equivalent: REPRO_LOG_JSON env var)")
    map_parser.set_defaults(handler=_cmd_map)

    arch_parser = subparsers.add_parser(
        "arch", help="list, show or export architecture specs")
    arch_sub = arch_parser.add_subparsers(dest="arch_command", required=True)
    arch_list = arch_sub.add_parser("list", help="list the presets")
    arch_list.set_defaults(handler=_cmd_arch)
    for sub_name, sub_help in (("show", "describe one fabric"),
                               ("dump", "serialise one fabric to JSON")):
        sub = arch_sub.add_parser(sub_name, help=sub_help)
        sub.add_argument("arch", help="preset name or arch-spec JSON path")
        sub.add_argument("--size", default="4x4",
                         help="array size for presets (default 4x4)")
        if sub_name == "dump":
            sub.add_argument("--out", default=None,
                             help="output path (default: stdout)")
        sub.set_defaults(handler=_cmd_arch)

    table1_parser = subparsers.add_parser(
        "table1", help="reproduce paper Table I / Table II")
    table1_parser.set_defaults(handler=lambda args: table1_table2.main([]))

    table3_parser = subparsers.add_parser(
        "table3", help="reproduce paper Table III (forwards extra args)")
    table3_parser.add_argument("rest", nargs=argparse.REMAINDER)
    table3_parser.set_defaults(handler=lambda args: table3.main(args.rest))

    fig5_parser = subparsers.add_parser(
        "fig5", help="reproduce paper Fig. 5 (forwards extra args)")
    fig5_parser.add_argument("rest", nargs=argparse.REMAINDER)
    fig5_parser.set_defaults(handler=lambda args: fig5.main(args.rest))

    ablation_parser = subparsers.add_parser(
        "ablation", help="design-choice ablation (forwards extra args)")
    ablation_parser.add_argument("rest", nargs=argparse.REMAINDER)
    ablation_parser.set_defaults(handler=lambda args: ablation.main(args.rest))

    archsweep_parser = subparsers.add_parser(
        "archsweep",
        help="compare II across fabrics (forwards extra args)")
    archsweep_parser.add_argument("rest", nargs=argparse.REMAINDER)
    archsweep_parser.set_defaults(handler=lambda args: arch_sweep.main(args.rest))

    optsweep_parser = subparsers.add_parser(
        "optsweep",
        help="compare II / compile time across optimization levels "
             "(forwards extra args)")
    optsweep_parser.add_argument("rest", nargs=argparse.REMAINDER)
    optsweep_parser.set_defaults(handler=lambda args: opt_sweep.main(args.rest))

    profile_parser = subparsers.add_parser(
        "profile",
        help="run benchmarks with per-phase solver profiling and emit JSON",
    )
    profile_parser.add_argument("benchmarks", nargs="+",
                                help="benchmark names (see `repro-map list`)")
    profile_parser.add_argument("--cgra", default="4x4",
                                help="CGRA size, e.g. 4x4")
    profile_parser.add_argument("--arch", default=None,
                                help="architecture preset or arch-spec JSON")
    profile_parser.add_argument("--approach", default="monomorphism",
                                choices=engine_choices(),
                                help="mapping engine to profile")
    profile_parser.add_argument("--seed", type=int, default=None,
                                help="RNG seed for the stochastic engines")
    profile_parser.add_argument("--solver-backend", default="arena",
                                choices=SOLVER_BACKEND_CHOICES,
                                help="SAT kernel (native = compiled tier, "
                                     "reference = pre-rewrite oracle)")
    profile_parser.add_argument("--timeout", type=float, default=120.0)
    profile_parser.add_argument("--opt-level", default="O0",
                                help=f"O0..O{MAX_OPT_LEVEL} (default O0)")
    profile_parser.add_argument("--passes", nargs="+", default=None,
                                metavar="PASS",
                                help="explicit optimization pass list")
    profile_parser.add_argument("--json", default=None,
                                help="write the records to a JSON file "
                                     "(default: print to stdout)")
    profile_parser.add_argument("--sample", action="store_true",
                                help="also run the signal-based sampling "
                                     "profiler and print collapsed stacks "
                                     "(flame-graph input; POSIX only, see "
                                     "docs/observability.md)")
    profile_parser.set_defaults(handler=_cmd_profile)

    sweep_parser = subparsers.add_parser(
        "sweep",
        help="run a (benchmark x size x approach) grid in parallel with "
             "caching",
    )
    sweep_parser.add_argument("--benchmarks", nargs="+", default=None,
                              help="benchmark subset (default: all 17)")
    sweep_parser.add_argument("--sizes", nargs="+", default=["2x2", "5x5"],
                              help="CGRA sizes, e.g. 2x2 5x5 10x10")
    sweep_parser.add_argument("--approaches", nargs="+",
                              default=["monomorphism"],
                              choices=engine_choices(),
                              help="mapper approaches to run (any of "
                                   f"{', '.join(ENGINE_NAMES)})")
    sweep_parser.add_argument("--arch", default=None,
                              help="architecture preset or arch-spec JSON "
                                   "path applied to every case (default: "
                                   "homogeneous torus)")
    sweep_parser.add_argument("--opt-level", default="O0",
                              help="pre-mapping DFG optimization level "
                                   "applied to every case "
                                   f"(O0..O{MAX_OPT_LEVEL}, default O0)")
    sweep_parser.add_argument("--passes", nargs="+", default=None,
                              metavar="PASS",
                              help="explicit optimization pass list "
                                   "overriding --opt-level")
    sweep_parser.add_argument("--solver-backend", default=None,
                              choices=SOLVER_BACKEND_CHOICES,
                              help="SAT kernel scenario column: pin the "
                                   "kernel behind the exact engines "
                                   "(default: arena; part of the batch "
                                   "cache key)")
    sweep_parser.add_argument("--seed", type=int, default=None,
                              help="RNG seed for heuristic/portfolio cases "
                                   "(default: REPRO_PROPERTY_SEED env var, "
                                   "then the built-in constant; part of "
                                   "the batch cache key)")
    sweep_parser.add_argument("--timeout", type=float, default=60.0,
                              help="per-case soft timeout in seconds")
    sweep_parser.add_argument("--jobs", type=int,
                              default=os.cpu_count() or 1,
                              help="concurrent worker processes "
                                   "(default: all CPUs)")
    sweep_parser.add_argument("--cache", default=None,
                              help="JSONL result cache; solved cases are "
                                   "skipped on re-runs")
    sweep_parser.add_argument("--csv", default=None,
                              help="write the result table to a CSV file")
    sweep_parser.add_argument("--quiet", action="store_true",
                              help="suppress per-case progress lines")
    sweep_parser.set_defaults(handler=_cmd_sweep)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    argv = list(argv)
    # The experiment subcommands own their full option set; forward their
    # arguments untouched instead of fighting argparse.REMAINDER quirks.
    forwarded = {"table3": table3.main, "fig5": fig5.main,
                 "ablation": ablation.main, "archsweep": arch_sweep.main,
                 "optsweep": opt_sweep.main}
    if argv and argv[0] in forwarded:
        return forwarded[argv[0]](argv[1:])
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":  # pragma: no cover - exercised via console script
    sys.exit(main())
