"""Data Flow Graph (DFG) of a loop body.

Nodes represent instructions; directed edges represent either intra-iteration
data dependencies or loop-carried dependencies with a positive iteration
distance (paper Sec. III-A, Fig. 2a). The time phase works on this directed
form; once a schedule fixes every node's kernel slot, the mapper switches to
the *labelled undirected* view required by the monomorphism formulation
(paper Sec. IV-A), available via :meth:`DFG.undirected_edges`.
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

import networkx as nx

from repro.arch.isa import Opcode, arity as opcode_arity, latency as opcode_latency


class DependenceKind(enum.Enum):
    """Kind of a DFG edge."""

    DATA = "data"
    LOOP_CARRIED = "loop_carried"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class DFGNode:
    """One instruction of the loop body.

    Attributes:
        id: unique integer identifier.
        opcode: the operation performed.
        name: optional human-readable name (e.g. the IR value it defines).
        value: literal value for ``CONST`` nodes, initial value for ``PHI``
            and ``INPUT`` nodes, array name for memory operations.
    """

    id: int
    opcode: Opcode = Opcode.ADD
    name: str = ""
    value: Optional[int] = None
    array: Optional[str] = None

    @property
    def latency(self) -> int:
        return opcode_latency(self.opcode)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        label = self.name or str(self.opcode)
        return f"n{self.id}:{label}"


@dataclass(frozen=True)
class DFGEdge:
    """A dependence between two instructions.

    ``distance`` is the iteration distance: 0 for intra-iteration data
    dependencies, >= 1 for loop-carried dependencies. ``operand_index`` is
    the position of the value in the destination's operand list (used by the
    simulators; irrelevant to the mapper itself).
    """

    src: int
    dst: int
    kind: DependenceKind = DependenceKind.DATA
    distance: int = 0
    operand_index: int = 0

    def __post_init__(self) -> None:
        if self.kind is DependenceKind.DATA and self.distance != 0:
            raise ValueError("data dependencies must have distance 0")
        if self.kind is DependenceKind.LOOP_CARRIED and self.distance < 1:
            raise ValueError("loop-carried dependencies must have distance >= 1")

    @property
    def is_loop_carried(self) -> bool:
        return self.kind is DependenceKind.LOOP_CARRIED


class DFG:
    """A loop-body data flow graph.

    The graph may contain cycles only through loop-carried edges; the data
    (distance-0) subgraph must be a DAG, which :meth:`validate` checks.
    """

    def __init__(self, name: str = "dfg") -> None:
        self.name = name
        self._nodes: Dict[int, DFGNode] = {}
        self._edges: List[DFGEdge] = []
        self._succ: Dict[int, List[DFGEdge]] = {}
        self._pred: Dict[int, List[DFGEdge]] = {}

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    def add_node(
        self,
        node_id: Optional[int] = None,
        opcode: Opcode = Opcode.ADD,
        name: str = "",
        value: Optional[int] = None,
        array: Optional[str] = None,
    ) -> DFGNode:
        """Add an instruction node and return it.

        If ``node_id`` is omitted the next free integer id is used.
        """
        if node_id is None:
            node_id = max(self._nodes, default=-1) + 1
        if node_id in self._nodes:
            raise ValueError(f"duplicate node id {node_id}")
        node = DFGNode(id=node_id, opcode=opcode, name=name, value=value, array=array)
        self._nodes[node_id] = node
        self._succ[node_id] = []
        self._pred[node_id] = []
        return node

    def add_edge(
        self,
        src: int,
        dst: int,
        kind: DependenceKind = DependenceKind.DATA,
        distance: int = 0,
        operand_index: int = 0,
    ) -> DFGEdge:
        """Add a dependence edge from node ``src`` to node ``dst``."""
        if src not in self._nodes:
            raise ValueError(f"unknown source node {src}")
        if dst not in self._nodes:
            raise ValueError(f"unknown destination node {dst}")
        if kind is DependenceKind.DATA and src == dst:
            raise ValueError("a data dependence cannot be a self-loop")
        if kind is DependenceKind.LOOP_CARRIED and distance == 0:
            distance = 1
        edge = DFGEdge(src=src, dst=dst, kind=kind, distance=distance,
                       operand_index=operand_index)
        self._edges.append(edge)
        self._succ[src].append(edge)
        self._pred[dst].append(edge)
        return edge

    def add_data_edge(self, src: int, dst: int, operand_index: int = 0) -> DFGEdge:
        """Convenience wrapper for an intra-iteration data dependence."""
        return self.add_edge(src, dst, DependenceKind.DATA, 0, operand_index)

    def add_loop_carried_edge(
        self, src: int, dst: int, distance: int = 1, operand_index: int = 0
    ) -> DFGEdge:
        """Convenience wrapper for a loop-carried dependence."""
        return self.add_edge(src, dst, DependenceKind.LOOP_CARRIED, distance,
                             operand_index)

    # ------------------------------------------------------------------ #
    # Accessors
    # ------------------------------------------------------------------ #
    @property
    def num_nodes(self) -> int:
        return len(self._nodes)

    @property
    def num_edges(self) -> int:
        return len(self._edges)

    def node(self, node_id: int) -> DFGNode:
        return self._nodes[node_id]

    def has_node(self, node_id: int) -> bool:
        return node_id in self._nodes

    def nodes(self) -> List[DFGNode]:
        """All nodes, ordered by id."""
        return [self._nodes[i] for i in sorted(self._nodes)]

    def node_ids(self) -> List[int]:
        return sorted(self._nodes)

    def edges(self) -> List[DFGEdge]:
        return list(self._edges)

    def data_edges(self) -> List[DFGEdge]:
        return [e for e in self._edges if e.kind is DependenceKind.DATA]

    def loop_carried_edges(self) -> List[DFGEdge]:
        return [e for e in self._edges if e.kind is DependenceKind.LOOP_CARRIED]

    def out_edges(self, node_id: int) -> List[DFGEdge]:
        return list(self._succ[node_id])

    def in_edges(self, node_id: int) -> List[DFGEdge]:
        return list(self._pred[node_id])

    def successors(self, node_id: int) -> List[int]:
        return [e.dst for e in self._succ[node_id]]

    def predecessors(self, node_id: int) -> List[int]:
        return [e.src for e in self._pred[node_id]]

    def operands(self, node_id: int) -> List[DFGEdge]:
        """Incoming edges sorted by operand index (for the simulators)."""
        return sorted(self._pred[node_id], key=lambda e: e.operand_index)

    # ------------------------------------------------------------------ #
    # Views used by the mapper
    # ------------------------------------------------------------------ #
    def undirected_edges(self) -> Set[Tuple[int, int]]:
        """All dependencies as unordered pairs (the paper's ``E_G``).

        Once a schedule is fixed, edge direction is redundant (Sec. IV-B);
        the monomorphism search only needs the adjacency requirement.
        Parallel edges and 2-cycles collapse onto a single undirected edge.
        """
        pairs: Set[Tuple[int, int]] = set()
        for e in self._edges:
            if e.src == e.dst:
                continue
            a, b = (e.src, e.dst) if e.src < e.dst else (e.dst, e.src)
            pairs.add((a, b))
        return pairs

    def neighbor_ids(self, node_id: int) -> Set[int]:
        """Undirected neighbourhood of a node (self excluded)."""
        neighbors = {e.dst for e in self._succ[node_id]}
        neighbors |= {e.src for e in self._pred[node_id]}
        neighbors.discard(node_id)
        return neighbors

    def data_dag(self) -> nx.DiGraph:
        """The distance-0 subgraph as a networkx DAG."""
        graph = nx.DiGraph()
        for node in self.nodes():
            graph.add_node(node.id, opcode=node.opcode)
        for e in self.data_edges():
            graph.add_edge(e.src, e.dst)
        return graph

    def full_digraph(self) -> nx.DiGraph:
        """The complete directed dependence graph with distances."""
        graph = nx.DiGraph()
        for node in self.nodes():
            graph.add_node(node.id, opcode=node.opcode)
        for e in self._edges:
            if graph.has_edge(e.src, e.dst):
                # keep the smallest distance (most constraining)
                if e.distance < graph[e.src][e.dst]["distance"]:
                    graph[e.src][e.dst]["distance"] = e.distance
            else:
                graph.add_edge(e.src, e.dst, distance=e.distance)
        return graph

    def to_networkx(self) -> nx.Graph:
        """Undirected networkx view (used by the cross-check matcher)."""
        graph = nx.Graph()
        for node in self.nodes():
            graph.add_node(node.id, opcode=node.opcode)
        for a, b in self.undirected_edges():
            graph.add_edge(a, b)
        return graph

    # ------------------------------------------------------------------ #
    # Validation and utilities
    # ------------------------------------------------------------------ #
    def validate(self) -> None:
        """Check structural invariants; raise ``ValueError`` on violation."""
        if not self._nodes:
            raise ValueError("DFG has no nodes")
        dag = self.data_dag()
        if not nx.is_directed_acyclic_graph(dag):
            cycle = nx.find_cycle(dag)
            raise ValueError(f"data-dependence subgraph has a cycle: {cycle}")
        for node in self.nodes():
            expected = opcode_arity(node.opcode)
            provided = len(self._pred[node.id])
            if node.opcode is Opcode.PHI:
                continue  # PHI takes its single operand through a back edge
            if provided > max(expected, 0) and expected == 0:
                raise ValueError(
                    f"node {node} takes no operands but has {provided} incoming edges"
                )

    def copy(self, name: Optional[str] = None) -> "DFG":
        clone = DFG(name or self.name)
        for node in self.nodes():
            clone.add_node(node.id, node.opcode, node.name, node.value, node.array)
        for e in self._edges:
            clone.add_edge(e.src, e.dst, e.kind, e.distance, e.operand_index)
        return clone

    def relabeled(self, mapping: Dict[int, int], name: Optional[str] = None) -> "DFG":
        """Return a copy with node ids renamed according to ``mapping``."""
        clone = DFG(name or self.name)
        for node in self.nodes():
            clone.add_node(mapping[node.id], node.opcode, node.name, node.value,
                           node.array)
        for e in self._edges:
            clone.add_edge(mapping[e.src], mapping[e.dst], e.kind, e.distance,
                           e.operand_index)
        return clone

    def source_nodes(self) -> List[int]:
        """Nodes with no incoming data edges."""
        return [n for n in self.node_ids()
                if not any(e.kind is DependenceKind.DATA for e in self._pred[n])]

    def sink_nodes(self) -> List[int]:
        """Nodes with no outgoing data edges."""
        return [n for n in self.node_ids()
                if not any(e.kind is DependenceKind.DATA for e in self._succ[n])]

    # ------------------------------------------------------------------ #
    # Serialisation
    # ------------------------------------------------------------------ #
    def to_dict(self) -> Dict:
        return {
            "name": self.name,
            "nodes": [
                {
                    "id": n.id,
                    "opcode": n.opcode.value,
                    "name": n.name,
                    "value": n.value,
                    "array": n.array,
                }
                for n in self.nodes()
            ],
            "edges": [
                {
                    "src": e.src,
                    "dst": e.dst,
                    "kind": e.kind.value,
                    "distance": e.distance,
                    "operand_index": e.operand_index,
                }
                for e in self._edges
            ],
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "DFG":
        dfg = cls(data.get("name", "dfg"))
        for n in data["nodes"]:
            dfg.add_node(n["id"], Opcode(n["opcode"]), n.get("name", ""),
                         n.get("value"), n.get("array"))
        for e in data["edges"]:
            dfg.add_edge(e["src"], e["dst"], DependenceKind(e["kind"]),
                         e.get("distance", 0), e.get("operand_index", 0))
        return dfg

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2)

    @classmethod
    def from_json(cls, text: str) -> "DFG":
        return cls.from_dict(json.loads(text))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"DFG(name={self.name!r}, nodes={self.num_nodes}, "
            f"edges={self.num_edges}, loop_carried={len(self.loop_carried_edges())})"
        )
