"""Modulo-scheduling analysis: ASAP, ALAP, Mobility Schedule, ResII, RecII.

These are the quantities of paper Sec. IV-B and Table I. All computations
honour per-opcode latencies from :mod:`repro.arch.isa`; with the default
unit latencies they reduce to the classic formulation used in the paper.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional

import networkx as nx

from repro.graphs.dfg import DFG, DependenceKind


def _topological_order(dfg: DFG) -> List[int]:
    """Topological order of the data-dependence DAG."""
    dag = dfg.data_dag()
    return list(nx.topological_sort(dag))


def asap_schedule(dfg: DFG) -> Dict[int, int]:
    """As-soon-as-possible start time of every node (data edges only)."""
    order = _topological_order(dfg)
    asap: Dict[int, int] = {}
    for node_id in order:
        earliest = 0
        for edge in dfg.in_edges(node_id):
            if edge.kind is not DependenceKind.DATA:
                continue
            earliest = max(earliest, asap[edge.src] + dfg.node(edge.src).latency)
        asap[node_id] = earliest
    return asap


def critical_path_length(dfg: DFG) -> int:
    """Length (in cycles) of the longest data-dependence chain."""
    asap = asap_schedule(dfg)
    return max(asap[n] + dfg.node(n).latency for n in dfg.node_ids())


def alap_schedule(dfg: DFG, horizon: Optional[int] = None) -> Dict[int, int]:
    """As-late-as-possible start times for a schedule of length ``horizon``.

    ``horizon`` defaults to the critical path length, which is the tightest
    feasible schedule length and reproduces the paper's Table I.
    """
    length = critical_path_length(dfg)
    if horizon is None:
        horizon = length
    if horizon < length:
        raise ValueError(
            f"horizon {horizon} is shorter than the critical path ({length})"
        )
    order = _topological_order(dfg)
    alap: Dict[int, int] = {}
    for node_id in reversed(order):
        node_latency = dfg.node(node_id).latency
        latest = horizon - node_latency
        for edge in dfg.out_edges(node_id):
            if edge.kind is not DependenceKind.DATA:
                continue
            latest = min(latest, alap[edge.dst] - node_latency)
        alap[node_id] = latest
    return alap


@dataclass
class MobilitySchedule:
    """The Mobility Schedule (MobS): per-node interval of legal start times.

    ``rows()`` reproduces the presentation of Table I: for every time step
    the set of nodes whose mobility interval contains it.
    """

    dfg: DFG
    asap: Dict[int, int]
    alap: Dict[int, int]
    length: int

    @classmethod
    def compute(cls, dfg: DFG, slack: int = 0) -> "MobilitySchedule":
        """Build the MobS, optionally extending the horizon by ``slack``."""
        if slack < 0:
            raise ValueError("slack must be non-negative")
        asap = asap_schedule(dfg)
        length = critical_path_length(dfg) + slack
        alap = alap_schedule(dfg, horizon=length)
        return cls(dfg=dfg, asap=asap, alap=alap, length=length)

    def earliest(self, node_id: int) -> int:
        return self.asap[node_id]

    def latest(self, node_id: int) -> int:
        return self.alap[node_id]

    def mobility(self, node_id: int) -> int:
        """Number of alternative start times of a node minus one."""
        return self.alap[node_id] - self.asap[node_id]

    def window(self, node_id: int) -> range:
        """Legal start times of a node."""
        return range(self.asap[node_id], self.alap[node_id] + 1)

    def rows(self) -> List[List[int]]:
        """MobS rows: nodes whose window contains each time step."""
        rows: List[List[int]] = [[] for _ in range(self.length)]
        for node_id in self.dfg.node_ids():
            for t in self.window(node_id):
                rows[t].append(node_id)
        return [sorted(r) for r in rows]

    def asap_rows(self) -> List[List[int]]:
        """ASAP rows as presented in Table I."""
        rows: List[List[int]] = [[] for _ in range(self.length)]
        for node_id, t in self.asap.items():
            rows[t].append(node_id)
        return [sorted(r) for r in rows]

    def alap_rows(self) -> List[List[int]]:
        """ALAP rows as presented in Table I."""
        rows: List[List[int]] = [[] for _ in range(self.length)]
        for node_id, t in self.alap.items():
            rows[t].append(node_id)
        return [sorted(r) for r in rows]

    def validate(self) -> None:
        """Sanity-check the window of every node."""
        for node_id in self.dfg.node_ids():
            if self.asap[node_id] > self.alap[node_id]:
                raise ValueError(
                    f"node {node_id} has empty mobility window "
                    f"[{self.asap[node_id]}, {self.alap[node_id]}]"
                )


def mobility_schedule(dfg: DFG, slack: int = 0) -> MobilitySchedule:
    """Convenience wrapper around :meth:`MobilitySchedule.compute`."""
    return MobilitySchedule.compute(dfg, slack=slack)


# --------------------------------------------------------------------------- #
# Minimum iteration interval
# --------------------------------------------------------------------------- #
def res_ii(dfg: DFG, num_pes: int) -> int:
    """Resource-constrained minimum II: ``ceil(|V_G| / |V_Mi|)``."""
    if num_pes < 1:
        raise ValueError("number of PEs must be positive")
    return math.ceil(dfg.num_nodes / num_pes)


def _has_positive_cycle(dfg: DFG, ii: int) -> bool:
    """True if some dependence cycle needs more than ``ii`` cycles per turn.

    Edge ``u -> v`` with distance ``d`` contributes weight ``lat(u) - ii*d``;
    a cycle of positive total weight means the recurrence cannot complete
    within ``ii`` cycles per iteration.
    """
    graph = nx.DiGraph()
    for node in dfg.nodes():
        graph.add_node(node.id)
    for edge in dfg.edges():
        weight = dfg.node(edge.src).latency - ii * edge.distance
        # keep the most constraining (largest) weight between a node pair
        if graph.has_edge(edge.src, edge.dst):
            if weight > graph[edge.src][edge.dst]["weight"]:
                graph[edge.src][edge.dst]["weight"] = weight
        else:
            graph.add_edge(edge.src, edge.dst, weight=weight)
    # A positive cycle under `weight` is a negative cycle under `-weight`.
    negated = nx.DiGraph()
    negated.add_nodes_from(graph.nodes())
    for u, v, data in graph.edges(data=True):
        negated.add_edge(u, v, weight=-data["weight"])
    return nx.negative_edge_cycle(negated, weight="weight")


def rec_ii(dfg: DFG) -> int:
    """Recurrence-constrained minimum II.

    ``RecII = max over cycles of ceil(length / distance)`` (paper Sec. IV-B).
    Computed as the smallest II for which no dependence cycle has positive
    slack-violating weight, via Bellman-Ford cycle detection; this avoids
    enumerating the (possibly exponential) set of simple cycles.
    """
    if not dfg.loop_carried_edges():
        return 1
    lo, hi = 1, max(1, sum(node.latency for node in dfg.nodes()))
    if _has_positive_cycle(dfg, hi):
        raise ValueError("dependence graph has a cycle with zero total distance")
    while lo < hi:
        mid = (lo + hi) // 2
        if _has_positive_cycle(dfg, mid):
            lo = mid + 1
        else:
            hi = mid
    return lo


def rec_ii_by_cycle_enumeration(dfg: DFG) -> int:
    """Reference RecII computed by enumerating simple cycles.

    Exponential in the worst case -- only used by tests to cross-check
    :func:`rec_ii` on small graphs.
    """
    graph = dfg.full_digraph()
    best = 1
    for cycle in nx.simple_cycles(graph):
        length = sum(dfg.node(n).latency for n in cycle)
        distance = 0
        for i, u in enumerate(cycle):
            v = cycle[(i + 1) % len(cycle)]
            distance += graph[u][v]["distance"]
        if distance == 0:
            raise ValueError(f"cycle {cycle} has zero total distance")
        best = max(best, math.ceil(length / distance))
    return best


def min_ii(dfg: DFG, num_pes: int) -> int:
    """The paper's ``mII = max(ResII, RecII)``."""
    return max(res_ii(dfg, num_pes), rec_ii(dfg))
