"""Kernel Mobility Schedule (KMS).

The KMS (paper Sec. IV-B, Table II) is obtained by folding the Mobility
Schedule by ``II``: a node that may start at absolute time ``t`` appears in
kernel slot ``t mod II`` with iteration subscript ``t div II``. It is "the
superset of all possible schedules for a given II" and is the structure the
time-phase constraints are formulated over.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Set, Tuple

from repro.graphs.analysis import MobilitySchedule
from repro.graphs.dfg import DFG


@dataclass(frozen=True)
class KMSEntry:
    """One candidate position of a node in the kernel.

    Attributes:
        node: DFG node id.
        slot: kernel time step (``t mod II``).
        iteration: folding subscript (``t div II``).
        time: the absolute start time ``t`` this entry corresponds to.
    """

    node: int
    slot: int
    iteration: int
    time: int


class KernelMobilitySchedule:
    """Folding of a :class:`MobilitySchedule` by a given ``II``."""

    def __init__(self, mobs: MobilitySchedule, ii: int) -> None:
        if ii < 1:
            raise ValueError("II must be >= 1")
        self.mobs = mobs
        self.ii = ii
        self._entries: List[KMSEntry] = []
        for node_id in mobs.dfg.node_ids():
            for t in mobs.window(node_id):
                self._entries.append(
                    KMSEntry(node=node_id, slot=t % ii, iteration=t // ii, time=t)
                )

    # ------------------------------------------------------------------ #
    # Structure
    # ------------------------------------------------------------------ #
    @property
    def dfg(self) -> DFG:
        return self.mobs.dfg

    @property
    def num_foldings(self) -> int:
        """Number of loop iterations interleaved: ``ceil(len(MobS) / II)``."""
        return math.ceil(self.mobs.length / self.ii)

    @property
    def num_entries(self) -> int:
        return len(self._entries)

    def entries(self) -> List[KMSEntry]:
        return list(self._entries)

    def entries_for_node(self, node_id: int) -> List[KMSEntry]:
        return [e for e in self._entries if e.node == node_id]

    def entries_for_slot(self, slot: int) -> List[KMSEntry]:
        if not (0 <= slot < self.ii):
            raise ValueError(f"slot {slot} out of range for II={self.ii}")
        return [e for e in self._entries if e.slot == slot]

    def candidate_slots(self, node_id: int) -> Set[int]:
        """Kernel slots a node may occupy."""
        return {e.slot for e in self.entries_for_node(node_id)}

    def candidate_times(self, node_id: int) -> List[int]:
        """Absolute start times a node may take (its mobility window)."""
        return list(self.mobs.window(node_id))

    def slot_of_time(self, t: int) -> int:
        return t % self.ii

    def iteration_of_time(self, t: int) -> int:
        return t // self.ii

    # ------------------------------------------------------------------ #
    # Presentation (Table II)
    # ------------------------------------------------------------------ #
    def rows(self) -> List[List[Tuple[int, int]]]:
        """KMS rows: for each slot, the ``(node, iteration)`` pairs in it."""
        rows: List[List[Tuple[int, int]]] = [[] for _ in range(self.ii)]
        for entry in self._entries:
            rows[entry.slot].append((entry.node, entry.iteration))
        return [sorted(row, key=lambda p: (p[1], p[0])) for row in rows]

    def formatted_rows(self) -> List[str]:
        """Human-readable rows, ``node_iteration`` per entry (as in Table II)."""
        lines = []
        for slot, row in enumerate(self.rows()):
            cells = " ".join(f"{node}_{it}" for node, it in row)
            lines.append(f"{slot}: {cells}")
        return lines

    def max_population(self) -> int:
        """The largest number of *distinct nodes* that may share a slot."""
        return max(
            len({node for node, _ in row}) for row in self.rows()
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"KernelMobilitySchedule(ii={self.ii}, "
            f"foldings={self.num_foldings}, entries={self.num_entries})"
        )
