"""Synthetic DFG generators.

Used by unit tests, property-based tests and ablation benches. The
paper-specific benchmark DFGs (the 17 MiBench/Rodinia kernels of Table III)
live in :mod:`repro.workloads`; the generators here produce *random but
structurally valid* DFGs: the data subgraph is a DAG, loop-carried edges have
positive distance, and every graph is connected.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence

from repro.arch.isa import Opcode
from repro.graphs.dfg import DFG

_ALU_OPCODES: Sequence[Opcode] = (
    Opcode.ADD,
    Opcode.SUB,
    Opcode.MUL,
    Opcode.AND,
    Opcode.OR,
    Opcode.XOR,
    Opcode.SHL,
    Opcode.SHR,
    Opcode.MIN,
    Opcode.MAX,
)


def chain_dfg(length: int, loop_carried: bool = True) -> DFG:
    """A simple dependence chain ``n0 -> n1 -> ... -> n{length-1}``.

    With ``loop_carried`` the last node feeds the first of the next
    iteration, producing a recurrence of length ``length`` (RecII = length
    under unit latencies).
    """
    if length < 1:
        raise ValueError("length must be >= 1")
    dfg = DFG(name=f"chain{length}")
    for i in range(length):
        dfg.add_node(i, Opcode.ADD, name=f"c{i}")
    for i in range(length - 1):
        dfg.add_data_edge(i, i + 1)
    if loop_carried and length > 1:
        dfg.add_loop_carried_edge(length - 1, 0, distance=1)
    return dfg


def binary_tree_dfg(depth: int) -> DFG:
    """A reduction tree of depth ``depth`` (2**depth leaves)."""
    if depth < 1:
        raise ValueError("depth must be >= 1")
    dfg = DFG(name=f"tree{depth}")
    num_leaves = 2 ** depth
    leaves = [dfg.add_node(opcode=Opcode.INPUT, name=f"in{i}").id
              for i in range(num_leaves)]
    level = leaves
    while len(level) > 1:
        next_level: List[int] = []
        for i in range(0, len(level), 2):
            node = dfg.add_node(opcode=Opcode.ADD)
            dfg.add_data_edge(level[i], node.id, operand_index=0)
            dfg.add_data_edge(level[i + 1], node.id, operand_index=1)
            next_level.append(node.id)
        level = next_level
    return dfg


def random_dfg(
    num_nodes: int,
    edge_probability: float = 0.15,
    num_loop_carried: int = 1,
    max_distance: int = 1,
    seed: Optional[int] = None,
) -> DFG:
    """A random connected DFG whose data subgraph is a DAG.

    Nodes are created in a fixed order and data edges only go from lower to
    higher ids, which guarantees acyclicity. Every node (except node 0)
    receives at least one incoming data edge so the graph is connected.
    Loop-carried edges go from higher to lower ids so that each one closes a
    recurrence cycle.
    """
    if num_nodes < 2:
        raise ValueError("need at least 2 nodes")
    if not (0.0 <= edge_probability <= 1.0):
        raise ValueError("edge_probability must be in [0, 1]")
    rng = random.Random(seed)
    dfg = DFG(name=f"random{num_nodes}")
    for i in range(num_nodes):
        dfg.add_node(i, rng.choice(_ALU_OPCODES), name=f"r{i}")
    for dst in range(1, num_nodes):
        # ensure connectivity with one mandatory predecessor
        src = rng.randrange(0, dst)
        dfg.add_data_edge(src, dst)
        for other in range(0, dst):
            if other != src and rng.random() < edge_probability:
                dfg.add_data_edge(other, dst)
    existing = {(e.src, e.dst) for e in dfg.edges()}
    added = 0
    attempts = 0
    while added < num_loop_carried and attempts < 100 * (num_loop_carried + 1):
        attempts += 1
        src = rng.randrange(1, num_nodes)
        dst = rng.randrange(0, src)
        if (src, dst) in existing:
            continue
        distance = rng.randint(1, max(1, max_distance))
        dfg.add_loop_carried_edge(src, dst, distance=distance)
        existing.add((src, dst))
        added += 1
    return dfg


_BINARY_ALU_OPCODES: Sequence[Opcode] = (
    Opcode.ADD,
    Opcode.SUB,
    Opcode.MUL,
    Opcode.AND,
    Opcode.OR,
    Opcode.XOR,
    Opcode.MIN,
    Opcode.MAX,
)


def executable_random_dfg(
    num_nodes: int,
    num_inputs: int = 2,
    seed: Optional[int] = None,
    loop_carried: bool = True,
    opcodes: Optional[Sequence[Opcode]] = None,
) -> DFG:
    """A random DFG that is *arity-consistent*, hence executable.

    Unlike :func:`random_dfg` (whose opcodes are decorative), every compute
    node here is a binary ALU operation with exactly two operands, so the
    graph runs on both :class:`repro.sim.reference.ReferenceInterpreter`
    and the cycle-level executor -- the property the differential test
    harness relies on. ``num_inputs`` INPUT nodes with deterministic values
    feed the DAG; with ``loop_carried`` the last compute node feeds the
    first one's second operand across one iteration (an accumulator-style
    recurrence).
    """
    if num_inputs < 1:
        raise ValueError("need at least 1 input node")
    if num_nodes < num_inputs + 1:
        raise ValueError("need at least one compute node")
    rng = random.Random(seed)
    pool = tuple(opcodes) if opcodes is not None else _BINARY_ALU_OPCODES
    dfg = DFG(name=f"executable_random{num_nodes}")
    for i in range(num_inputs):
        dfg.add_node(i, Opcode.INPUT, name=f"in{i}", value=rng.randint(-8, 8))
    first_compute = num_inputs
    for node_id in range(num_inputs, num_nodes):
        dfg.add_node(node_id, rng.choice(pool), name=f"e{node_id}",
                     value=rng.randint(-4, 4))
        lhs = rng.randrange(0, node_id)
        dfg.add_data_edge(lhs, node_id, operand_index=0)
        if loop_carried and node_id == first_compute:
            continue  # operand 1 arrives through the recurrence below
        rhs = rng.randrange(0, node_id)
        dfg.add_data_edge(rhs, node_id, operand_index=1)
    if loop_carried:
        dfg.add_loop_carried_edge(num_nodes - 1, first_compute, distance=1,
                                  operand_index=1)
    return dfg


def layered_dfg(
    layers: Sequence[int],
    seed: Optional[int] = None,
    loop_carried: bool = True,
) -> DFG:
    """A layered DAG: every node has one or two predecessors in the previous layer.

    ``layers`` gives the number of nodes per layer. Useful for building DFGs
    with a controlled parallelism profile (wide layers stress the per-slot
    capacity constraint).
    """
    if not layers or any(width < 1 for width in layers):
        raise ValueError("layers must be a non-empty sequence of positive widths")
    rng = random.Random(seed)
    dfg = DFG(name="layered")
    previous: List[int] = []
    all_layers: List[List[int]] = []
    for layer_index, width in enumerate(layers):
        current: List[int] = []
        for _ in range(width):
            opcode = Opcode.INPUT if layer_index == 0 else rng.choice(_ALU_OPCODES)
            node = dfg.add_node(opcode=opcode)
            current.append(node.id)
            if previous:
                preds = rng.sample(previous, k=min(len(previous), rng.randint(1, 2)))
                for op_index, pred in enumerate(preds):
                    dfg.add_data_edge(pred, node.id, operand_index=op_index)
        all_layers.append(current)
        previous = current
    if loop_carried and len(all_layers) > 1:
        # close the recurrence onto a compute node (layer 1), not onto a
        # zero-arity INPUT leaf of layer 0
        dfg.add_loop_carried_edge(all_layers[-1][0], all_layers[1][0], distance=1)
    return dfg
