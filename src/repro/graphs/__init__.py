"""Data Flow Graphs and modulo-scheduling analysis.

* :mod:`repro.graphs.dfg` -- the DFG data structure (data dependencies and
  loop-carried dependencies with iteration distances).
* :mod:`repro.graphs.analysis` -- ASAP / ALAP / Mobility Schedule, ResII,
  RecII and mII computations (paper Sec. IV-B, Table I).
* :mod:`repro.graphs.kms` -- the Kernel Mobility Schedule obtained by folding
  the Mobility Schedule by ``II`` (paper Table II).
* :mod:`repro.graphs.generators` -- synthetic DFG generators used by tests
  and property-based checks.
"""

from repro.graphs.dfg import DFG, DFGEdge, DFGNode, DependenceKind
from repro.graphs.analysis import (
    MobilitySchedule,
    asap_schedule,
    alap_schedule,
    mobility_schedule,
    res_ii,
    rec_ii,
    min_ii,
    critical_path_length,
)
from repro.graphs.kms import KernelMobilitySchedule

__all__ = [
    "DFG",
    "DFGEdge",
    "DFGNode",
    "DependenceKind",
    "MobilitySchedule",
    "asap_schedule",
    "alap_schedule",
    "mobility_schedule",
    "res_ii",
    "rec_ii",
    "min_ii",
    "critical_path_length",
    "KernelMobilitySchedule",
]
