"""Processing Element and register file model.

A PE (paper Fig. 1) contains an ALU, a flag register, and a register file.
The architecture targeted by the paper has one important property that the
whole decoupling idea relies on: *the register file of a PE can be read by
its neighbouring PEs*. The mapper only needs the structural description kept
here; dynamic state (register contents during execution) lives in
:mod:`repro.sim.machine`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Tuple

from repro.arch.isa import DEFAULT_PE_OPERATIONS, Opcode


class RegisterFile:
    """A small register file addressed by symbolic register names.

    The simulator allocates one rotating register per (DFG node, copy) pair,
    so the register file is modelled as a bounded symbolic store rather than
    a numbered bank. ``capacity`` bounds the number of live registers; a
    ``RegisterFileOverflow`` is raised when it is exceeded, which is how
    register-pressure violations of a mapping surface during validation.
    """

    def __init__(self, capacity: int = 32) -> None:
        if capacity < 1:
            raise ValueError("register file capacity must be positive")
        self.capacity = capacity
        self._values: Dict[str, int] = {}

    def write(self, name: str, value: int) -> None:
        """Write ``value`` into register ``name`` (allocating it if new)."""
        if name not in self._values and len(self._values) >= self.capacity:
            raise RegisterFileOverflow(
                f"register file overflow: capacity {self.capacity} exceeded"
            )
        self._values[name] = value

    def read(self, name: str) -> int:
        """Read register ``name``; raises ``KeyError`` if never written."""
        return self._values[name]

    def contains(self, name: str) -> bool:
        return name in self._values

    def free(self, name: str) -> None:
        """Release a register that is no longer live."""
        self._values.pop(name, None)

    @property
    def live_registers(self) -> int:
        return len(self._values)

    def clear(self) -> None:
        self._values.clear()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"RegisterFile(capacity={self.capacity}, live={self.live_registers})"


class RegisterFileOverflow(RuntimeError):
    """Raised when a mapping needs more registers than a PE provides."""


@dataclass(frozen=True)
class ProcessingElement:
    """Static description of one PE of the array.

    Attributes:
        index: linear index of the PE in row-major order.
        row, col: grid coordinates.
        operations: the subset of the ISA this PE can execute.
        register_file_size: capacity of the local register file.
    """

    index: int
    row: int
    col: int
    operations: FrozenSet[Opcode] = field(default=DEFAULT_PE_OPERATIONS)
    register_file_size: int = 32

    def supports(self, opcode: Opcode) -> bool:
        """Return True if this PE's ALU can execute ``opcode``."""
        return opcode in self.operations

    @property
    def position(self) -> Tuple[int, int]:
        return (self.row, self.col)

    def make_register_file(self) -> RegisterFile:
        """Instantiate a fresh (empty) register file for simulation."""
        return RegisterFile(self.register_file_size)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"PE{self.index}({self.row},{self.col})"
