"""CGRA architecture model.

This subpackage models the hardware substrate targeted by the mapper:

* :mod:`repro.arch.isa` -- the operation set supported by a PE's ALU,
  with latency and arity metadata.
* :mod:`repro.arch.pe` -- a single Processing Element and its register file.
* :mod:`repro.arch.topology` -- interconnect topologies (open mesh, torus).
* :mod:`repro.arch.cgra` -- the 2D CGRA array (the spatial graph), possibly
  heterogeneous (per-PE operation sets).
* :mod:`repro.arch.mrrg` -- the Modulo Routing Resource Graph, i.e. ``II``
  stacked copies of the CGRA linked by time adjacencies (paper Sec. IV-A).
* :mod:`repro.arch.spec` -- the declarative, JSON-serialisable architecture
  specification and the preset fabric library.
"""

from repro.arch.isa import Opcode, OPCODE_INFO, latency, arity, is_memory_op
from repro.arch.pe import ProcessingElement, RegisterFile
from repro.arch.topology import Topology, grid_neighbors
from repro.arch.cgra import CGRA
from repro.arch.mrrg import MRRG, TimeAdjacency
from repro.arch.spec import (
    ArchSpec,
    PRESETS,
    build_preset,
    preset_names,
    resolve_arch,
    spec_of,
)

__all__ = [
    "Opcode",
    "OPCODE_INFO",
    "latency",
    "arity",
    "is_memory_op",
    "ProcessingElement",
    "RegisterFile",
    "Topology",
    "grid_neighbors",
    "CGRA",
    "MRRG",
    "TimeAdjacency",
    "ArchSpec",
    "PRESETS",
    "build_preset",
    "preset_names",
    "resolve_arch",
    "spec_of",
]
