"""Modulo Routing Resource Graph (MRRG).

The MRRG (paper Sec. IV-A, Fig. 3) consists of ``II`` stacked copies of the
CGRA spatial graph. Vertex ``(pe, slot)`` represents PE ``pe`` at kernel time
step ``slot`` and carries the label ``slot``; a DFG whose vertices are
labelled with their kernel slot is mapped into the MRRG by a monomorphism.

Two time-adjacency models are provided:

* ``TimeAdjacency.ALL_PAIRS`` (default, the paper's architecture): because a
  value written to a PE's register file stays readable by that PE and its
  neighbours until overwritten, PE ``u`` at slot ``i`` is connected to PE
  ``v`` at *every* slot ``j`` whenever ``v`` is ``u`` itself or one of its
  spatial neighbours (this is what Fig. 3 depicts with the green/red/yellow
  adjacencies from PE0 at T=0 to all other time steps).
* ``TimeAdjacency.CONSECUTIVE``: the classic MRRG where time adjacencies only
  connect consecutive slots (modulo ``II``). Used for ablations; it models a
  CGRA whose neighbour values must be consumed on the very next cycle.

Vertices are encoded as integers ``slot * num_pes + pe`` so that the
monomorphism search can treat them as plain ints. Adjacency is computed
implicitly from the CGRA's spatial adjacency, which keeps 20x20 x II=16
instances (6400 vertices) cheap to handle.
"""

from __future__ import annotations

import enum
from typing import Iterator, List

import networkx as nx

from repro.arch.cgra import CGRA
from repro.arch.isa import Opcode


class TimeAdjacency(enum.Enum):
    """How time steps of the MRRG are linked (see module docstring)."""

    ALL_PAIRS = "all_pairs"
    CONSECUTIVE = "consecutive"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


class MRRG:
    """Time-expanded resource graph of a CGRA for a given ``II``."""

    def __init__(
        self,
        cgra: CGRA,
        ii: int,
        time_adjacency: TimeAdjacency = TimeAdjacency.ALL_PAIRS,
    ) -> None:
        if ii < 1:
            raise ValueError("II must be >= 1")
        self.cgra = cgra
        self.ii = ii
        self.time_adjacency = time_adjacency
        self._num_pes = cgra.num_pes

    # ------------------------------------------------------------------ #
    # Vertex encoding
    # ------------------------------------------------------------------ #
    @property
    def num_vertices(self) -> int:
        """``|V_M| = II * |V_Mi|``."""
        return self.ii * self._num_pes

    def vertex(self, pe: int, slot: int) -> int:
        """Encode ``(pe, slot)`` as an integer vertex id."""
        if not (0 <= pe < self._num_pes):
            raise ValueError(f"PE index {pe} out of range")
        if not (0 <= slot < self.ii):
            raise ValueError(f"slot {slot} out of range for II={self.ii}")
        return slot * self._num_pes + pe

    def pe_of(self, vertex: int) -> int:
        return vertex % self._num_pes

    def slot_of(self, vertex: int) -> int:
        return vertex // self._num_pes

    def label(self, vertex: int) -> int:
        """The paper's ``l_M``: the time step a vertex belongs to."""
        return self.slot_of(vertex)

    def vertices(self) -> Iterator[int]:
        return iter(range(self.num_vertices))

    def vertices_with_label(self, slot: int) -> Iterator[int]:
        """All vertices of the architecture copy at time step ``slot``."""
        if not (0 <= slot < self.ii):
            raise ValueError(f"slot {slot} out of range for II={self.ii}")
        base = slot * self._num_pes
        return iter(range(base, base + self._num_pes))

    # ------------------------------------------------------------------ #
    # Operation compatibility (heterogeneous arrays)
    # ------------------------------------------------------------------ #
    def supports(self, vertex: int, opcode: Opcode) -> bool:
        """True if the PE behind ``vertex`` can execute ``opcode``.

        Every time-step copy of a PE inherits the PE's operation set, so
        compatibility is a per-vertex attribute of the time-extended graph.
        """
        return self.cgra.supports(self.pe_of(vertex), opcode)

    def compatible_vertices(self, slot: int, opcode: Opcode) -> Iterator[int]:
        """Vertices of time step ``slot`` whose PE supports ``opcode``."""
        if not (0 <= slot < self.ii):
            raise ValueError(f"slot {slot} out of range for II={self.ii}")
        base = slot * self._num_pes
        supporting = self.cgra.supporting_pes(opcode)
        if len(supporting) == self._num_pes:
            return iter(range(base, base + self._num_pes))
        return iter(base + pe for pe in sorted(supporting))

    # ------------------------------------------------------------------ #
    # Adjacency
    # ------------------------------------------------------------------ #
    def _slots_adjacent(self, slot_a: int, slot_b: int) -> bool:
        if self.time_adjacency is TimeAdjacency.ALL_PAIRS:
            return True
        if slot_a == slot_b:
            return True
        diff = (slot_a - slot_b) % self.ii
        return diff == 1 or diff == self.ii - 1

    def has_edge(self, a: int, b: int) -> bool:
        """True if distinct vertices ``a`` and ``b`` are MRRG-adjacent."""
        if a == b:
            return False
        pe_a, pe_b = self.pe_of(a), self.pe_of(b)
        if not self.cgra.adjacent_or_self(pe_a, pe_b):
            return False
        return self._slots_adjacent(self.slot_of(a), self.slot_of(b))

    def neighbors(self, vertex: int) -> Iterator[int]:
        """All vertices adjacent to ``vertex`` (lazily generated)."""
        pe = self.pe_of(vertex)
        slot = self.slot_of(vertex)
        reachable_pes = self.cgra.neighbors_or_self(pe)
        for other_slot in range(self.ii):
            if not self._slots_adjacent(slot, other_slot):
                continue
            base = other_slot * self._num_pes
            for other_pe in reachable_pes:
                other = base + other_pe
                if other != vertex:
                    yield other

    def degree(self, vertex: int) -> int:
        """Number of MRRG neighbours of ``vertex``."""
        return sum(1 for _ in self.neighbors(vertex))

    @property
    def connectivity_degree(self) -> int:
        """The per-time-step connectivity degree ``D_M`` (incl. self-loop)."""
        return self.cgra.connectivity_degree

    @property
    def num_edges(self) -> int:
        """Total number of (undirected) MRRG edges."""
        total = sum(self.degree(v) for v in self.vertices())
        return total // 2

    # ------------------------------------------------------------------ #
    # Export
    # ------------------------------------------------------------------ #
    def to_networkx(self) -> nx.Graph:
        """Materialise the MRRG as a networkx graph (small instances only)."""
        graph = nx.Graph()
        for v in self.vertices():
            graph.add_node(
                v,
                pe=self.pe_of(v),
                slot=self.slot_of(v),
                label=self.label(v),
                operations=self.cgra.pe(self.pe_of(v)).operations,
            )
        for v in self.vertices():
            for u in self.neighbors(v):
                if u > v:
                    graph.add_edge(v, u)
        return graph

    def capacity_per_slot(self) -> List[int]:
        """``|V_Mi|`` for every time step (constant for homogeneous arrays)."""
        return [self._num_pes] * self.ii

    def describe(self) -> str:
        """Human-readable summary used by examples and the CLI."""
        return (
            f"MRRG: {self.cgra.size_label} CGRA, II={self.ii}, "
            f"{self.num_vertices} vertices, {self.num_edges} edges, "
            f"time adjacency={self.time_adjacency}"
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"MRRG(cgra={self.cgra.size_label}, ii={self.ii}, "
            f"time_adjacency={self.time_adjacency})"
        )
