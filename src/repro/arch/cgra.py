"""The CGRA array: a 2D grid of PEs plus its spatial interconnect graph.

This is the *spatial* half of the mapping problem. The temporal expansion
(``II`` stacked copies of this graph) lives in :mod:`repro.arch.mrrg`.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

import networkx as nx

from repro.arch.isa import DEFAULT_PE_OPERATIONS, Opcode
from repro.arch.pe import ProcessingElement
from repro.arch.topology import Topology, grid_neighbors, uniform_degree


class CGRA:
    """A rows x cols Coarse-Grain Reconfigurable Array.

    PEs are indexed in row-major order. The spatial graph has one vertex per
    PE and an undirected edge between PEs that can exchange data through the
    interconnect; in the architecture assumed by the paper a PE can also read
    its *own* register file, which is modelled by the "adjacent or self"
    relation (:meth:`adjacent_or_self`) and by the self-loop counted in the
    connectivity degree ``D_M`` (paper Sec. IV-A).

    Args:
        rows, cols: grid dimensions (both >= 1, at least 2 PEs total).
        topology: interconnect topology; the default torus matches the
            paper's uniform-degree assumption (``D_M`` = 3 for 2x2, 5 for
            3x3 and larger).
        register_file_size: per-PE register file capacity.
        operations: ISA subset supported by every PE not covered by
            ``pe_operations`` (the homogeneous default).
        pe_operations: optional per-PE operation sets, keyed by row-major
            PE index; PEs absent from the mapping fall back to
            ``operations``. This is what makes the array *heterogeneous*
            (memory-capable columns, mul-capable subsets, ...); the mapper,
            the baseline, and the validator all consult it.
    """

    def __init__(
        self,
        rows: int,
        cols: int,
        topology: Topology = Topology.TORUS,
        register_file_size: int = 32,
        operations: Optional[Iterable[Opcode]] = None,
        pe_operations: Optional[Dict[int, Iterable[Opcode]]] = None,
    ) -> None:
        if rows < 1 or cols < 1:
            raise ValueError("CGRA dimensions must be positive")
        if rows * cols < 2:
            raise ValueError("a CGRA needs at least 2 PEs")
        self.rows = rows
        self.cols = cols
        self.topology = topology
        self.register_file_size = register_file_size
        ops: FrozenSet[Opcode] = (
            frozenset(operations) if operations is not None else DEFAULT_PE_OPERATIONS
        )
        overrides: Dict[int, FrozenSet[Opcode]] = {}
        if pe_operations is not None:
            for index, op_set in pe_operations.items():
                if not (0 <= index < rows * cols):
                    raise ValueError(
                        f"pe_operations index {index} outside a {rows}x{cols} CGRA"
                    )
                overrides[index] = frozenset(op_set)
        self._pes: List[ProcessingElement] = [
            ProcessingElement(
                index=r * cols + c,
                row=r,
                col=c,
                operations=overrides.get(r * cols + c, ops),
                register_file_size=register_file_size,
            )
            for r in range(rows)
            for c in range(cols)
        ]
        self._supporting: Dict[Opcode, FrozenSet[int]] = {}
        self._neighbors: List[FrozenSet[int]] = []
        for pe in self._pes:
            positions = grid_neighbors(rows, cols, pe.row, pe.col, topology)
            self._neighbors.append(
                frozenset(r * cols + c for (r, c) in positions)
            )
        self._neighbors_or_self: List[FrozenSet[int]] = [
            self._neighbors[i] | {i} for i in range(len(self._pes))
        ]

    # ------------------------------------------------------------------ #
    # Basic structure
    # ------------------------------------------------------------------ #
    @property
    def num_pes(self) -> int:
        """Number of PEs in the array (``|V_Mi|`` in the paper)."""
        return len(self._pes)

    @property
    def pes(self) -> Sequence[ProcessingElement]:
        return tuple(self._pes)

    def pe(self, index: int) -> ProcessingElement:
        return self._pes[index]

    def pe_index(self, row: int, col: int) -> int:
        """Linear (row-major) index of the PE at ``(row, col)``."""
        if not (0 <= row < self.rows and 0 <= col < self.cols):
            raise ValueError(f"({row}, {col}) outside a {self.rows}x{self.cols} CGRA")
        return row * self.cols + col

    def pe_position(self, index: int) -> Tuple[int, int]:
        """Grid coordinates of PE ``index``."""
        if not (0 <= index < self.num_pes):
            raise ValueError(f"PE index {index} out of range")
        return divmod(index, self.cols)

    # ------------------------------------------------------------------ #
    # Spatial adjacency
    # ------------------------------------------------------------------ #
    def neighbors(self, index: int) -> FrozenSet[int]:
        """Indices of the PEs adjacent to PE ``index`` (self excluded)."""
        return self._neighbors[index]

    def neighbors_or_self(self, index: int) -> FrozenSet[int]:
        """Indices of PEs whose register file PE ``index`` can read."""
        return self._neighbors_or_self[index]

    def adjacent(self, a: int, b: int) -> bool:
        """True if distinct PEs ``a`` and ``b`` are connected."""
        return b in self._neighbors[a]

    def adjacent_or_self(self, a: int, b: int) -> bool:
        """True if PE ``a`` can read data produced on PE ``b``."""
        return a == b or b in self._neighbors[a]

    @property
    def connectivity_degree(self) -> int:
        """The paper's ``D_M``: max neighbour count *including* the self-loop."""
        return max(len(n) for n in self._neighbors) + 1

    @property
    def has_uniform_degree(self) -> bool:
        """True if every PE has the same degree (required by the proof)."""
        return uniform_degree(self.rows, self.cols, self.topology)

    def degree(self, index: int) -> int:
        """Connectivity degree of one PE, including its self-loop."""
        return len(self._neighbors[index]) + 1

    # ------------------------------------------------------------------ #
    # Export / helpers
    # ------------------------------------------------------------------ #
    def spatial_graph(self) -> nx.Graph:
        """The undirected PE interconnect graph (self-loops included)."""
        graph = nx.Graph()
        for pe in self._pes:
            graph.add_node(pe.index, row=pe.row, col=pe.col)
            graph.add_edge(pe.index, pe.index)
        for pe in self._pes:
            for other in self._neighbors[pe.index]:
                graph.add_edge(pe.index, other)
        return graph

    def supports_everywhere(self, opcode: Opcode) -> bool:
        """True if every PE of the array can execute ``opcode``."""
        return len(self.supporting_pes(opcode)) == self.num_pes

    # ------------------------------------------------------------------ #
    # Operation support (heterogeneity)
    # ------------------------------------------------------------------ #
    def supports(self, pe_index: int, opcode: Opcode) -> bool:
        """True if PE ``pe_index`` can execute ``opcode``."""
        return self._pes[pe_index].supports(opcode)

    def supporting_pes(self, opcode: Opcode) -> FrozenSet[int]:
        """Indices of the PEs able to execute ``opcode`` (cached)."""
        cached = self._supporting.get(opcode)
        if cached is None:
            cached = frozenset(
                pe.index for pe in self._pes if pe.supports(opcode)
            )
            self._supporting[opcode] = cached
        return cached

    @property
    def is_homogeneous(self) -> bool:
        """True if every PE supports the same operation set."""
        first = self._pes[0].operations
        return all(pe.operations == first for pe in self._pes)

    def operation_sets(self) -> Tuple[FrozenSet[Opcode], ...]:
        """Per-PE operation sets in row-major order (the heterogeneity map)."""
        return tuple(pe.operations for pe in self._pes)

    @property
    def size_label(self) -> str:
        return f"{self.rows}x{self.cols}"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CGRA({self.rows}x{self.cols}, topology={self.topology}, "
            f"D_M={self.connectivity_degree})"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CGRA):
            return NotImplemented
        return (
            self.rows == other.rows
            and self.cols == other.cols
            and self.topology == other.topology
            and self.register_file_size == other.register_file_size
            and self.operation_sets() == other.operation_sets()
        )

    def __hash__(self) -> int:
        return hash((
            self.rows,
            self.cols,
            self.topology,
            self.register_file_size,
            self.operation_sets(),
        ))
