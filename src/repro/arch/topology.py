"""Interconnect topologies for the 2D CGRA array.

The paper assumes that every MRRG vertex has the same connectivity degree
``D_M`` (3 for a 2x2 array, 5 for 3x3 and larger). Counting the self-loop
(a PE can always keep data in its own register file), this uniform degree
holds for a *torus* (mesh with wrap-around links) but not for an open mesh,
whose corner PEs have fewer neighbours. We therefore provide both:

* ``Topology.TORUS`` (default, matches the paper's degree figures), and
* ``Topology.MESH`` (open mesh, used in tests and ablations; the uniform
  degree assumption of the existence proof does not hold there).

A ``DIAGONAL`` variant (king-move mesh) is included as an architectural
extension point; it is exercised only by tests and ablation benches.
"""

from __future__ import annotations

import enum
from typing import List, Set, Tuple


class Topology(enum.Enum):
    """Supported PE interconnect topologies."""

    MESH = "mesh"
    TORUS = "torus"
    DIAGONAL = "diagonal"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


_ORTHOGONAL_OFFSETS: Tuple[Tuple[int, int], ...] = ((-1, 0), (1, 0), (0, -1), (0, 1))
_DIAGONAL_OFFSETS: Tuple[Tuple[int, int], ...] = _ORTHOGONAL_OFFSETS + (
    (-1, -1),
    (-1, 1),
    (1, -1),
    (1, 1),
)


def grid_neighbors(
    rows: int, cols: int, row: int, col: int, topology: Topology
) -> Set[Tuple[int, int]]:
    """Return the set of neighbouring grid positions of ``(row, col)``.

    The PE itself is never included; callers that need the "adjacent or
    self" relation (used throughout the mapping formulation because a PE can
    read its own register file) add the identity explicitly.
    """
    if rows < 1 or cols < 1:
        raise ValueError("grid dimensions must be positive")
    if not (0 <= row < rows and 0 <= col < cols):
        raise ValueError(f"position ({row}, {col}) outside a {rows}x{cols} grid")

    offsets = _DIAGONAL_OFFSETS if topology is Topology.DIAGONAL else _ORTHOGONAL_OFFSETS
    neighbors: Set[Tuple[int, int]] = set()
    for dr, dc in offsets:
        r, c = row + dr, col + dc
        if topology is Topology.TORUS:
            r %= rows
            c %= cols
        elif not (0 <= r < rows and 0 <= c < cols):
            continue
        if (r, c) != (row, col):
            neighbors.add((r, c))
    return neighbors


def uniform_degree(rows: int, cols: int, topology: Topology) -> bool:
    """Return True if every PE has the same number of neighbours."""
    degrees = {
        len(grid_neighbors(rows, cols, r, c, topology))
        for r in range(rows)
        for c in range(cols)
    }
    return len(degrees) == 1


def max_degree(rows: int, cols: int, topology: Topology) -> int:
    """Return the maximum number of neighbours over all PEs (self excluded)."""
    return max(
        len(grid_neighbors(rows, cols, r, c, topology))
        for r in range(rows)
        for c in range(cols)
    )


def all_positions(rows: int, cols: int) -> List[Tuple[int, int]]:
    """Enumerate grid positions in row-major order."""
    return [(r, c) for r in range(rows) for c in range(cols)]
