"""Instruction set of a CGRA Processing Element.

Every PE contains an ALU able to execute the operations below (paper Fig. 1).
The mapper itself only needs latencies (for dependence distances in the
schedule); the cycle-level simulator in :mod:`repro.sim` additionally needs
arity and an evaluation function for each opcode.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Sequence


class Opcode(enum.Enum):
    """Operations supported by a PE ALU."""

    # Arithmetic
    ADD = "add"
    SUB = "sub"
    MUL = "mul"
    DIV = "div"
    REM = "rem"
    NEG = "neg"
    ABS = "abs"
    MIN = "min"
    MAX = "max"
    MAC = "mac"  # multiply-accumulate: a * b + c
    # Bitwise / shifts
    AND = "and"
    OR = "or"
    XOR = "xor"
    NOT = "not"
    SHL = "shl"
    SHR = "shr"
    # Comparisons (produce 0/1)
    EQ = "eq"
    NE = "ne"
    LT = "lt"
    LE = "le"
    GT = "gt"
    GE = "ge"
    # Selection
    SELECT = "select"  # cond ? a : b
    # Memory
    LOAD = "load"
    STORE = "store"
    # Pseudo operations
    CONST = "const"  # literal constant materialisation
    INPUT = "input"  # loop-invariant live-in value
    INDUCTION = "induction"  # the loop induction variable
    PHI = "phi"  # loop-carried merge (initial value / previous iteration)
    OUTPUT = "output"  # live-out value (kept so sinks are observable)
    ROUTE = "route"  # explicit routing copy (only used by ablations)
    NOP = "nop"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


def _div(a: int, b: int) -> int:
    return 0 if b == 0 else int(a / b)


def _rem(a: int, b: int) -> int:
    return 0 if b == 0 else int(a - b * int(a / b))


_MASK = (1 << 32) - 1


def _shl(a: int, b: int) -> int:
    return (a << (b & 31)) & _MASK


def _shr(a: int, b: int) -> int:
    return (a & _MASK) >> (b & 31)


@dataclass(frozen=True)
class OpcodeInfo:
    """Static metadata for one opcode.

    Attributes:
        arity: number of value operands consumed from the DFG.
        latency: cycles between issue and result availability (>= 1 for
            every real operation; pseudo-ops keep latency 1 so that the
            modulo-scheduling maths of the paper, which assumes unit
            latencies, is reproduced by default).
        evaluate: python evaluation used by the simulators, or ``None``
            for operations with side effects handled specially (memory,
            pseudo ops).
    """

    arity: int
    latency: int = 1
    evaluate: Optional[Callable[..., int]] = None


OPCODE_INFO: Dict[Opcode, OpcodeInfo] = {
    Opcode.ADD: OpcodeInfo(2, 1, lambda a, b: a + b),
    Opcode.SUB: OpcodeInfo(2, 1, lambda a, b: a - b),
    Opcode.MUL: OpcodeInfo(2, 1, lambda a, b: a * b),
    Opcode.DIV: OpcodeInfo(2, 1, _div),
    Opcode.REM: OpcodeInfo(2, 1, _rem),
    Opcode.NEG: OpcodeInfo(1, 1, lambda a: -a),
    Opcode.ABS: OpcodeInfo(1, 1, lambda a: abs(a)),
    Opcode.MIN: OpcodeInfo(2, 1, lambda a, b: min(a, b)),
    Opcode.MAX: OpcodeInfo(2, 1, lambda a, b: max(a, b)),
    Opcode.MAC: OpcodeInfo(3, 1, lambda a, b, c: a * b + c),
    Opcode.AND: OpcodeInfo(2, 1, lambda a, b: a & b),
    Opcode.OR: OpcodeInfo(2, 1, lambda a, b: a | b),
    Opcode.XOR: OpcodeInfo(2, 1, lambda a, b: a ^ b),
    Opcode.NOT: OpcodeInfo(1, 1, lambda a: ~a),
    Opcode.SHL: OpcodeInfo(2, 1, _shl),
    Opcode.SHR: OpcodeInfo(2, 1, _shr),
    Opcode.EQ: OpcodeInfo(2, 1, lambda a, b: int(a == b)),
    Opcode.NE: OpcodeInfo(2, 1, lambda a, b: int(a != b)),
    Opcode.LT: OpcodeInfo(2, 1, lambda a, b: int(a < b)),
    Opcode.LE: OpcodeInfo(2, 1, lambda a, b: int(a <= b)),
    Opcode.GT: OpcodeInfo(2, 1, lambda a, b: int(a > b)),
    Opcode.GE: OpcodeInfo(2, 1, lambda a, b: int(a >= b)),
    Opcode.SELECT: OpcodeInfo(3, 1, lambda c, a, b: a if c else b),
    Opcode.LOAD: OpcodeInfo(1, 1, None),
    Opcode.STORE: OpcodeInfo(2, 1, None),
    Opcode.CONST: OpcodeInfo(0, 1, None),
    Opcode.INPUT: OpcodeInfo(0, 1, None),
    Opcode.INDUCTION: OpcodeInfo(0, 1, None),
    Opcode.PHI: OpcodeInfo(1, 1, None),
    Opcode.OUTPUT: OpcodeInfo(1, 1, lambda a: a),
    Opcode.ROUTE: OpcodeInfo(1, 1, lambda a: a),
    Opcode.NOP: OpcodeInfo(0, 1, None),
}


def latency(opcode: Opcode) -> int:
    """Return the latency, in cycles, of ``opcode``."""
    return OPCODE_INFO[opcode].latency


def arity(opcode: Opcode) -> int:
    """Return the number of value operands consumed by ``opcode``."""
    return OPCODE_INFO[opcode].arity


def is_memory_op(opcode: Opcode) -> bool:
    """Return True for operations that access the shared data memory."""
    return opcode in (Opcode.LOAD, Opcode.STORE)


def evaluate(opcode: Opcode, operands: Sequence[int]) -> int:
    """Evaluate a pure ALU opcode on integer operands.

    Memory and pseudo operations are handled by the simulators directly and
    raise ``ValueError`` here.
    """
    info = OPCODE_INFO[opcode]
    if info.evaluate is None:
        raise ValueError(f"opcode {opcode} cannot be evaluated as a pure ALU op")
    if len(operands) != info.arity:
        raise ValueError(
            f"opcode {opcode} expects {info.arity} operands, got {len(operands)}"
        )
    return int(info.evaluate(*operands))


DEFAULT_PE_OPERATIONS = frozenset(Opcode)
"""By default every PE is homogeneous and supports the full ISA."""
