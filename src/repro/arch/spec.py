"""Declarative CGRA architecture specification (``repro.arch.spec``).

An :class:`ArchSpec` is a JSON-serialisable description of a fabric:
dimensions, interconnect topology, register-file size, the default ISA
subset of a PE, and per-PE operation-set overrides. It is the single
source of truth for *heterogeneous* arrays: memory-capable columns,
mul-capable subsets, arbitrary per-PE restrictions.

JSON format (``"all"`` expands to the full ISA)::

    {
      "name": "memory_column_mesh",
      "rows": 4,
      "cols": 4,
      "topology": "mesh",
      "register_file_size": 32,
      "default_operations": ["add", "sub", "..."],
      "pe_operations": {"0": ["load", "store", "add"], "4": "all"}
    }

A small preset library parameterised by array size is provided (see
:data:`PRESETS`); ``repro-map map/sweep --arch <preset|spec.json>`` and the
experiment drivers resolve either a preset name or a spec file through
:func:`resolve_arch`.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, Iterable, List, Mapping, Tuple, Union

from repro.arch.cgra import CGRA
from repro.arch.isa import DEFAULT_PE_OPERATIONS, Opcode, is_memory_op
from repro.arch.topology import Topology

#: opcodes a "multiplier-capable" PE provides on top of the plain ALU set.
MUL_FAMILY: FrozenSet[Opcode] = frozenset(
    {Opcode.MUL, Opcode.MAC, Opcode.DIV, Opcode.REM}
)

#: opcodes that access the shared data memory.
MEMORY_FAMILY: FrozenSet[Opcode] = frozenset(
    op for op in Opcode if is_memory_op(op)
)


def _ops_to_json(ops: FrozenSet[Opcode]) -> Union[str, List[str]]:
    if ops == DEFAULT_PE_OPERATIONS:
        return "all"
    return sorted(op.value for op in ops)


def _ops_from_json(data: Union[str, Iterable[str]]) -> FrozenSet[Opcode]:
    if data == "all":
        return DEFAULT_PE_OPERATIONS
    if isinstance(data, str):
        raise ValueError(
            f"operation set must be 'all' or a list of opcode names, got {data!r}"
        )
    return frozenset(Opcode(name) for name in data)


@dataclass(frozen=True)
class ArchSpec:
    """A declarative, serialisable CGRA description.

    Attributes:
        name: human-readable fabric name (shows up in tables and labels).
        rows, cols: grid dimensions.
        topology: interconnect topology.
        register_file_size: per-PE register file capacity.
        default_operations: ISA subset of every PE without an override.
        pe_operations: per-PE overrides, keyed by row-major PE index.
    """

    name: str
    rows: int
    cols: int
    topology: Topology = Topology.TORUS
    register_file_size: int = 32
    default_operations: FrozenSet[Opcode] = DEFAULT_PE_OPERATIONS
    pe_operations: Mapping[int, FrozenSet[Opcode]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.rows < 1 or self.cols < 1:
            raise ValueError("ArchSpec dimensions must be positive")
        if self.rows * self.cols < 2:
            raise ValueError("an ArchSpec needs at least 2 PEs")
        object.__setattr__(
            self,
            "pe_operations",
            {index: frozenset(ops) for index, ops in self.pe_operations.items()},
        )
        for index in self.pe_operations:
            if not (0 <= index < self.rows * self.cols):
                raise ValueError(
                    f"pe_operations index {index} outside a "
                    f"{self.rows}x{self.cols} array"
                )

    def __hash__(self) -> int:
        # the generated hash would choke on the pe_operations dict; hash a
        # canonical immutable view instead so specs work as set/dict keys
        return hash((
            self.name,
            self.rows,
            self.cols,
            self.topology,
            self.register_file_size,
            self.default_operations,
            tuple(sorted(self.pe_operations.items())),
        ))

    # ------------------------------------------------------------------ #
    # Derived views
    # ------------------------------------------------------------------ #
    @property
    def num_pes(self) -> int:
        return self.rows * self.cols

    @property
    def size_label(self) -> str:
        return f"{self.rows}x{self.cols}"

    @property
    def is_homogeneous(self) -> bool:
        """True if every PE ends up with the same operation set.

        Matches ``CGRA.is_homogeneous`` of the built fabric, including the
        case where overrides cover every PE with one identical set.
        """
        first = self.operations_of(0)
        return all(
            self.operations_of(index) == first for index in range(self.num_pes)
        )

    def operations_of(self, pe_index: int) -> FrozenSet[Opcode]:
        """Operation set of one PE (override or default)."""
        return self.pe_operations.get(pe_index, self.default_operations)

    def build(self) -> CGRA:
        """Instantiate the described fabric."""
        return CGRA(
            self.rows,
            self.cols,
            topology=self.topology,
            register_file_size=self.register_file_size,
            operations=self.default_operations,
            pe_operations=dict(self.pe_operations),
        )

    def describe(self) -> str:
        """Human-readable summary used by ``repro-map arch show``."""
        lines = [
            f"{self.name}: {self.size_label} {self.topology} CGRA, "
            f"register file {self.register_file_size}",
            f"  default operations: {_ops_to_json(self.default_operations)}",
        ]
        for index in sorted(self.pe_operations):
            row, col = divmod(index, self.cols)
            lines.append(
                f"  PE{index} ({row},{col}): "
                f"{_ops_to_json(self.pe_operations[index])}"
            )
        if not self.pe_operations:
            lines.append("  (homogeneous: no per-PE overrides)")
        return "\n".join(lines)

    # ------------------------------------------------------------------ #
    # Serialisation
    # ------------------------------------------------------------------ #
    def to_dict(self) -> Dict:
        return {
            "name": self.name,
            "rows": self.rows,
            "cols": self.cols,
            "topology": self.topology.value,
            "register_file_size": self.register_file_size,
            "default_operations": _ops_to_json(self.default_operations),
            "pe_operations": {
                str(index): _ops_to_json(ops)
                for index, ops in sorted(self.pe_operations.items())
            },
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "ArchSpec":
        try:
            rows = int(data["rows"])
            cols = int(data["cols"])
        except KeyError as exc:
            raise ValueError(f"arch spec misses required key {exc}") from exc
        return cls(
            name=str(data.get("name", f"{rows}x{cols}")),
            rows=rows,
            cols=cols,
            topology=Topology(data.get("topology", Topology.TORUS.value)),
            register_file_size=int(data.get("register_file_size", 32)),
            default_operations=_ops_from_json(
                data.get("default_operations", "all")
            ),
            pe_operations={
                int(index): _ops_from_json(ops)
                for index, ops in dict(data.get("pe_operations", {})).items()
            },
        )

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "ArchSpec":
        return cls.from_dict(json.loads(text))

    def dump(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_json() + "\n")

    @classmethod
    def load(cls, path: str) -> "ArchSpec":
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_json(handle.read())


# ---------------------------------------------------------------------- #
# Preset library
# ---------------------------------------------------------------------- #
def homogeneous_torus(rows: int, cols: int) -> ArchSpec:
    """The paper's fabric: full ISA on every PE, torus interconnect."""
    return ArchSpec(name="homogeneous_torus", rows=rows, cols=cols)


def memory_column_mesh(rows: int, cols: int) -> ArchSpec:
    """Open mesh whose leftmost column holds the only memory-capable PEs.

    This mirrors the classic ADRES/SAT-MapIt arrangement where load/store
    units sit on the array edge next to the data memory: column 0 keeps the
    full ISA, every other PE loses LOAD/STORE.
    """
    compute_ops = DEFAULT_PE_OPERATIONS - MEMORY_FAMILY
    overrides = {
        r * cols + c: compute_ops
        for r in range(rows)
        for c in range(1, cols)
    }
    return ArchSpec(
        name="memory_column_mesh",
        rows=rows,
        cols=cols,
        topology=Topology.MESH,
        pe_operations=overrides,
    )


def mul_sparse_checkerboard(rows: int, cols: int) -> ArchSpec:
    """Torus where only the even checkerboard cells own a multiplier.

    PEs with ``(row + col)`` even keep the full ISA; the odd cells drop the
    multiplier family (MUL/MAC/DIV/REM), modelling fabrics that share
    expensive functional units across neighbouring PEs.
    """
    alu_ops = DEFAULT_PE_OPERATIONS - MUL_FAMILY
    overrides = {
        r * cols + c: alu_ops
        for r in range(rows)
        for c in range(cols)
        if (r + c) % 2 == 1
    }
    return ArchSpec(
        name="mul_sparse_checkerboard",
        rows=rows,
        cols=cols,
        pe_operations=overrides,
    )


def mul_free_torus(rows: int, cols: int) -> ArchSpec:
    """Torus with no multiplier anywhere: kernels using MUL are infeasible.

    Used by tests and the CLI smoke to exercise the clean-infeasibility
    path (a kernel needing an op no PE supports must report infeasible,
    not crash).
    """
    alu_ops = DEFAULT_PE_OPERATIONS - MUL_FAMILY
    return ArchSpec(
        name="mul_free_torus",
        rows=rows,
        cols=cols,
        default_operations=alu_ops,
    )


PRESETS: Dict[str, Callable[[int, int], ArchSpec]] = {
    "homogeneous_torus": homogeneous_torus,
    "memory_column_mesh": memory_column_mesh,
    "mul_sparse_checkerboard": mul_sparse_checkerboard,
    "mul_free_torus": mul_free_torus,
}


def preset_names() -> List[str]:
    return sorted(PRESETS)


def build_preset(name: str, rows: int, cols: int) -> ArchSpec:
    """Instantiate a preset at the requested array size."""
    try:
        factory = PRESETS[name]
    except KeyError as exc:
        raise ValueError(
            f"unknown architecture preset {name!r}; "
            f"expected one of {preset_names()} or a spec-file path"
        ) from exc
    return factory(rows, cols)


def resolve_arch(arch: str, rows: int, cols: int) -> ArchSpec:
    """Resolve ``--arch``: a preset name (sized ``rows x cols``) or a path.

    A spec file's own dimensions are authoritative -- the requested size is
    only used for presets, which are size-parametric.
    """
    if arch in PRESETS:
        return build_preset(arch, rows, cols)
    if arch.endswith(".json"):
        return ArchSpec.load(arch)
    raise ValueError(
        f"unknown architecture {arch!r}; expected one of {preset_names()} "
        "or a path to a .json spec file"
    )


def spec_of(cgra: CGRA, name: str = "custom") -> ArchSpec:
    """Reverse-engineer an :class:`ArchSpec` from a live :class:`CGRA`.

    PEs whose operation set equals the most common one become the default;
    the rest become per-PE overrides, so ``spec_of(spec.build())`` round
    trips the heterogeneity map (modulo the default/override split).
    """
    op_sets = cgra.operation_sets()
    counts: Dict[FrozenSet[Opcode], int] = {}
    for ops in op_sets:
        counts[ops] = counts.get(ops, 0) + 1
    default = max(counts, key=lambda ops: (counts[ops], len(ops)))
    overrides: Dict[int, FrozenSet[Opcode]] = {
        index: ops for index, ops in enumerate(op_sets) if ops != default
    }
    return ArchSpec(
        name=name,
        rows=cgra.rows,
        cols=cgra.cols,
        topology=cgra.topology,
        register_file_size=cgra.register_file_size,
        default_operations=default,
        pe_operations=overrides,
    )


__all__: Tuple[str, ...] = (
    "ArchSpec",
    "MUL_FAMILY",
    "MEMORY_FAMILY",
    "PRESETS",
    "preset_names",
    "build_preset",
    "resolve_arch",
    "spec_of",
    "homogeneous_torus",
    "memory_column_mesh",
    "mul_sparse_checkerboard",
    "mul_free_torus",
)
