"""DFG extraction from a parsed loop kernel.

This is the reproduction's stand-in for the paper's LLVM-based flow: the
loop body is converted into a DFG whose nodes are operations and whose edges
are data dependencies; reads of ``acc`` variables that happen before their
re-definition become loop-carried dependencies with distance 1 (the value
comes from the previous iteration), exactly like the back edges the paper's
flow derives from LLVM phi nodes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.arch.isa import Opcode
from repro.frontend.ast_nodes import (
    Assignment,
    BinaryOp,
    CallExpr,
    Declaration,
    Expression,
    LoadExpr,
    NumberLiteral,
    Program,
    StoreStatement,
    Ternary,
    UnaryOp,
    VariableRef,
)
from repro.frontend.parser import parse_program
from repro.graphs.dfg import DFG


class ExtractionError(ValueError):
    """Raised when the kernel cannot be converted into a DFG."""


_BINARY_OPCODES: Dict[str, Opcode] = {
    "+": Opcode.ADD,
    "-": Opcode.SUB,
    "*": Opcode.MUL,
    "/": Opcode.DIV,
    "%": Opcode.REM,
    "&": Opcode.AND,
    "|": Opcode.OR,
    "^": Opcode.XOR,
    "<<": Opcode.SHL,
    ">>": Opcode.SHR,
    "<": Opcode.LT,
    "<=": Opcode.LE,
    ">": Opcode.GT,
    ">=": Opcode.GE,
    "==": Opcode.EQ,
    "!=": Opcode.NE,
}

_UNARY_OPCODES: Dict[str, Opcode] = {
    "-": Opcode.NEG,
    "~": Opcode.NOT,
}

_CALL_OPCODES: Dict[str, Opcode] = {
    "min": Opcode.MIN,
    "max": Opcode.MAX,
    "abs": Opcode.ABS,
}


@dataclass
class ExtractedProgram:
    """The result of DFG extraction.

    Attributes:
        program: the parsed AST.
        dfg: the extracted data flow graph (ready for the mapper).
        arrays: array name -> declared size.
        accumulators: accumulator name -> initial value.
        initial_values: loop-carried source node -> value used for the first
            iteration (consumed by the simulators).
        outputs: live-out name -> node producing its final value.
        induction_node: node id of the induction variable, if used.
        trip_count: loop trip count.
    """

    program: Program
    dfg: DFG
    arrays: Dict[str, int] = field(default_factory=dict)
    accumulators: Dict[str, int] = field(default_factory=dict)
    initial_values: Dict[int, int] = field(default_factory=dict)
    outputs: Dict[str, int] = field(default_factory=dict)
    induction_node: Optional[int] = None
    trip_count: int = 0
    loop_start: int = 0

    def remapped(self, opt_result) -> "ExtractedProgram":
        """Rebind this program to an optimized DFG.

        ``opt_result`` is the :class:`repro.opt.pipeline.OptResult` of a
        pre-mapping pass pipeline run on :attr:`dfg`. Per-node metadata
        (initial values of loop-carried sources, live-out bindings, the
        induction node) is translated through its node map so the
        simulators can execute the optimized graph: the pass legality
        rules guarantee every loop-carried source survives under its own
        id, and bindings to erased nodes are dropped.
        """
        node_map = opt_result.node_map
        return ExtractedProgram(
            program=self.program,
            dfg=opt_result.optimized,
            arrays=dict(self.arrays),
            accumulators=dict(self.accumulators),
            initial_values={
                node_map[node_id]: value
                for node_id, value in self.initial_values.items()
                if node_map.get(node_id) is not None
            },
            outputs={
                name: node_map[node_id]
                for name, node_id in self.outputs.items()
                if node_map.get(node_id) is not None
            },
            induction_node=(
                node_map.get(self.induction_node)
                if self.induction_node is not None else None
            ),
            trip_count=self.trip_count,
            loop_start=self.loop_start,
        )


class _Extractor:
    def __init__(self, program: Program, name: str, order_memory: bool) -> None:
        self.program = program
        self.order_memory = order_memory
        self.dfg = DFG(name=name)
        self.environment: Dict[str, int] = {}
        self.constants: Dict[int, int] = {}
        self.induction_node: Optional[int] = None
        self.pending_acc_uses: List[Tuple[str, int, int]] = []  # (acc, node, op idx)
        self.acc_decls: Dict[str, Declaration] = {}
        self.input_decls: Dict[str, Declaration] = {}
        self.const_decls: Dict[str, Declaration] = {}
        self.arrays: Dict[str, int] = {}
        self.assigned_in_body: Dict[str, int] = {}
        self.last_store: Dict[str, int] = {}

        for decl in program.declarations:
            if decl.kind == "acc":
                self.acc_decls[decl.name] = decl
            elif decl.kind == "input":
                self.input_decls[decl.name] = decl
            elif decl.kind == "const":
                self.const_decls[decl.name] = decl
            elif decl.kind == "array":
                if decl.size is None or decl.size < 1:
                    raise ExtractionError(f"array {decl.name!r} needs a positive size")
                self.arrays[decl.name] = decl.size

    # ------------------------------------------------------------------ #
    # Value lookup
    # ------------------------------------------------------------------ #
    def _constant_node(self, value: int) -> int:
        if value not in self.constants:
            node = self.dfg.add_node(opcode=Opcode.CONST, name=f"c{value}",
                                     value=value)
            self.constants[value] = node.id
        return self.constants[value]

    def _induction(self) -> int:
        if self.induction_node is None:
            node = self.dfg.add_node(
                opcode=Opcode.INDUCTION,
                name=self.program.loop.induction_variable,
                value=self.program.loop.start,
            )
            self.induction_node = node.id
        return self.induction_node

    def _lookup(self, name: str) -> Tuple[Optional[int], bool]:
        """Resolve a variable reference.

        Returns ``(node_id, is_pending_acc)``; a pending accumulator use has
        no node yet (the loop-carried edge is added once the defining
        assignment has been seen).
        """
        if name == self.program.loop.induction_variable:
            return self._induction(), False
        if name in self.environment:
            return self.environment[name], False
        if name in self.acc_decls:
            return None, True
        if name in self.input_decls:
            decl = self.input_decls[name]
            node = self.dfg.add_node(opcode=Opcode.INPUT, name=name,
                                     value=decl.value if decl.value is not None else 0)
            self.environment[name] = node.id
            return node.id, False
        if name in self.const_decls:
            decl = self.const_decls[name]
            if decl.value is None:
                raise ExtractionError(f"const {name!r} needs a value")
            node_id = self._constant_node(decl.value)
            self.environment[name] = node_id
            return node_id, False
        raise ExtractionError(f"use of undefined variable {name!r}")

    # ------------------------------------------------------------------ #
    # Expression lowering
    # ------------------------------------------------------------------ #
    def _attach_operand(self, consumer: int, operand_index: int,
                        expression: Expression) -> None:
        if isinstance(expression, VariableRef):
            node_id, pending = self._lookup(expression.name)
            if pending:
                self.pending_acc_uses.append(
                    (expression.name, consumer, operand_index)
                )
                return
            self.dfg.add_data_edge(node_id, consumer, operand_index=operand_index)
            return
        node_id = self._lower(expression)
        self.dfg.add_data_edge(node_id, consumer, operand_index=operand_index)

    def _new_op(self, opcode: Opcode, operands: List[Expression],
                array: Optional[str] = None) -> int:
        node = self.dfg.add_node(opcode=opcode, array=array)
        for index, operand in enumerate(operands):
            self._attach_operand(node.id, index, operand)
        return node.id

    def _lower(self, expression: Expression) -> int:
        if isinstance(expression, NumberLiteral):
            return self._constant_node(expression.value)
        if isinstance(expression, VariableRef):
            node_id, pending = self._lookup(expression.name)
            if pending:
                # A bare accumulator read used as a statement value: lower it
                # through a ROUTE node so the loop-carried edge has a target.
                route = self.dfg.add_node(opcode=Opcode.ROUTE,
                                          name=f"{expression.name}_prev")
                self.pending_acc_uses.append((expression.name, route.id, 0))
                return route.id
            return node_id
        if isinstance(expression, BinaryOp):
            opcode = _BINARY_OPCODES.get(expression.op)
            if opcode is None:
                raise ExtractionError(f"unsupported operator {expression.op!r}")
            return self._new_op(opcode, [expression.left, expression.right])
        if isinstance(expression, UnaryOp):
            opcode = _UNARY_OPCODES.get(expression.op)
            if opcode is None:
                raise ExtractionError(f"unsupported unary operator {expression.op!r}")
            return self._new_op(opcode, [expression.operand])
        if isinstance(expression, Ternary):
            return self._new_op(
                Opcode.SELECT,
                [expression.condition, expression.if_true, expression.if_false],
            )
        if isinstance(expression, CallExpr):
            opcode = _CALL_OPCODES.get(expression.function)
            if opcode is None:
                raise ExtractionError(f"unknown builtin {expression.function!r}")
            return self._new_op(opcode, list(expression.arguments))
        if isinstance(expression, LoadExpr):
            if expression.array not in self.arrays:
                raise ExtractionError(f"load from undeclared array {expression.array!r}")
            node_id = self._new_op(Opcode.LOAD, [expression.index],
                                   array=expression.array)
            self._order_after_store(expression.array, node_id)
            return node_id
        raise ExtractionError(f"cannot lower expression {expression!r}")

    def _order_after_store(self, array: str, node_id: int) -> None:
        if not self.order_memory:
            return
        previous_store = self.last_store.get(array)
        if previous_store is not None:
            # intra-iteration memory ordering edge (store before later access)
            self.dfg.add_data_edge(previous_store, node_id,
                                   operand_index=len(self.dfg.in_edges(node_id)))

    # ------------------------------------------------------------------ #
    # Statement lowering
    # ------------------------------------------------------------------ #
    def _lower_statement(self, statement) -> None:
        if isinstance(statement, Assignment):
            target = statement.target
            if target == self.program.loop.induction_variable:
                raise ExtractionError("cannot assign to the induction variable")
            if target in self.arrays or target in self.input_decls \
                    or target in self.const_decls:
                raise ExtractionError(f"cannot assign to {target!r}")
            node_id = self._lower(statement.value)
            self.environment[target] = node_id
            self.assigned_in_body[target] = node_id
            return
        if isinstance(statement, StoreStatement):
            if statement.array not in self.arrays:
                raise ExtractionError(
                    f"store to undeclared array {statement.array!r}"
                )
            node_id = self._new_op(Opcode.STORE,
                                   [statement.index, statement.value],
                                   array=statement.array)
            self._order_after_store(statement.array, node_id)
            self.last_store[statement.array] = node_id
            return
        raise ExtractionError(f"unsupported statement {statement!r}")

    # ------------------------------------------------------------------ #
    def run(self) -> ExtractedProgram:
        loop = self.program.loop
        for statement in loop.body:
            self._lower_statement(statement)

        initial_values: Dict[int, int] = {}
        for acc_name, consumer, operand_index in self.pending_acc_uses:
            if acc_name not in self.assigned_in_body:
                raise ExtractionError(
                    f"accumulator {acc_name!r} is read but never assigned in the loop"
                )
            source = self.assigned_in_body[acc_name]
            self.dfg.add_loop_carried_edge(source, consumer, distance=1,
                                           operand_index=operand_index)
            decl = self.acc_decls[acc_name]
            initial_values[source] = decl.value if decl.value is not None else 0

        if self.dfg.num_nodes == 0:
            raise ExtractionError("the loop body produced no operations")
        self.dfg.validate()
        outputs = {
            name: self.assigned_in_body[name]
            for name in self.acc_decls
            if name in self.assigned_in_body
        }
        return ExtractedProgram(
            program=self.program,
            dfg=self.dfg,
            arrays=dict(self.arrays),
            accumulators={
                name: (decl.value if decl.value is not None else 0)
                for name, decl in self.acc_decls.items()
            },
            initial_values=initial_values,
            outputs=outputs,
            induction_node=self.induction_node,
            trip_count=loop.trip_count,
            loop_start=loop.start,
        )


def extract_dfg(source_or_program, name: str = "kernel",
                order_memory: bool = True) -> ExtractedProgram:
    """Extract a DFG from kernel source text (or an already-parsed AST)."""
    program = (
        source_or_program
        if isinstance(source_or_program, Program)
        else parse_program(source_or_program)
    )
    return _Extractor(program, name=name, order_memory=order_memory).run()
