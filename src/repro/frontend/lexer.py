"""Tokenizer for the loop-kernel language."""

from __future__ import annotations

import enum
import re
from dataclasses import dataclass
from typing import List


class LexerError(ValueError):
    """Raised on unrecognised input."""

    def __init__(self, message: str, line: int, column: int) -> None:
        super().__init__(f"{message} at line {line}, column {column}")
        self.line = line
        self.column = column


class TokenKind(enum.Enum):
    NUMBER = "number"
    IDENT = "ident"
    KEYWORD = "keyword"
    OP = "op"
    PUNCT = "punct"
    EOF = "eof"


KEYWORDS = frozenset(
    {"input", "const", "acc", "array", "for", "in", "load", "store",
     "min", "max", "abs", "output"}
)

# Order matters: longest operators first.
_OPERATORS = (
    "<<", ">>", "<=", ">=", "==", "!=",
    "+", "-", "*", "/", "%", "&", "|", "^", "~", "<", ">", "?", ":",
)
_PUNCTUATION = ("(", ")", "{", "}", "[", "]", ",", ";", "=", "..")


@dataclass(frozen=True)
class Token:
    kind: TokenKind
    text: str
    line: int
    column: int

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Token({self.kind.value}, {self.text!r}, {self.line}:{self.column})"


_TOKEN_RE = re.compile(
    r"""
    (?P<ws>[ \t\r]+)
  | (?P<comment>\#[^\n]*|//[^\n]*)
  | (?P<newline>\n)
  | (?P<number>0[xX][0-9a-fA-F]+|\d+)
  | (?P<ident>[A-Za-z_][A-Za-z_0-9]*)
  | (?P<dots>\.\.)
  | (?P<op><<|>>|<=|>=|==|!=|[+\-*/%&|^~<>?:])
  | (?P<punct>[(){}\[\],;=])
    """,
    re.VERBOSE,
)


def tokenize(source: str) -> List[Token]:
    """Turn ``source`` into a token list terminated by an EOF token."""
    tokens: List[Token] = []
    line = 1
    line_start = 0
    position = 0
    while position < len(source):
        match = _TOKEN_RE.match(source, position)
        if match is None:
            raise LexerError(
                f"unexpected character {source[position]!r}",
                line,
                position - line_start + 1,
            )
        position = match.end()
        kind = match.lastgroup
        text = match.group()
        column = match.start() - line_start + 1
        if kind == "newline":
            line += 1
            line_start = match.end()
            continue
        if kind in ("ws", "comment"):
            continue
        if kind == "number":
            tokens.append(Token(TokenKind.NUMBER, text, line, column))
        elif kind == "ident":
            token_kind = TokenKind.KEYWORD if text in KEYWORDS else TokenKind.IDENT
            tokens.append(Token(token_kind, text, line, column))
        elif kind == "dots":
            tokens.append(Token(TokenKind.PUNCT, text, line, column))
        elif kind == "op":
            tokens.append(Token(TokenKind.OP, text, line, column))
        elif kind == "punct":
            tokens.append(Token(TokenKind.PUNCT, text, line, column))
    tokens.append(Token(TokenKind.EOF, "", line, 1))
    return tokens


def parse_number(text: str) -> int:
    """Parse a decimal or hexadecimal literal."""
    return int(text, 16) if text.lower().startswith("0x") else int(text, 10)
