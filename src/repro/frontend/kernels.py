"""Example loop kernels written in the front-end language.

These are small, fully executable kernels used by the examples and the test
suite to exercise the complete flow: source text -> DFG -> mapping ->
cycle-level simulation -> comparison against the sequential reference. They
are intentionally written like the MiBench/Rodinia inner loops the paper
targets (accumulators, table lookups, stencils, reductions).
"""

from __future__ import annotations

from typing import Dict

EXAMPLE_KERNELS: Dict[str, str] = {
    # Sum of products of two vectors (the "hello world" of CGRA mapping).
    "dot_product": """
        array a[64];
        array b[64];
        acc sum = 0;
        for i in 0..64 {
            x = load(a, i);
            y = load(b, i);
            sum = sum + x * y;
        }
    """,
    # CRC-style table-less checksum with a shift/xor recurrence.
    "crc8": """
        array data[32];
        const poly = 29;
        acc crc = 255;
        for i in 0..32 {
            byte = load(data, i);
            mixed = crc ^ byte;
            bit = mixed & 1;
            shifted = mixed >> 1;
            crc = bit ? (shifted ^ poly) : shifted;
        }
    """,
    # 3-tap FIR filter with explicit delay line carried across iterations.
    "fir3": """
        array samples[48];
        array out[48];
        const c0 = 3;
        const c1 = 5;
        const c2 = 2;
        acc z1 = 0;
        acc z2 = 0;
        for i in 0..48 {
            x = load(samples, i);
            y = c0 * x + c1 * z1 + c2 * z2;
            store(out, i, y);
            z2 = z1;
            z1 = x;
        }
    """,
    # Population count over a word per element (bitcount-like).
    "bitcount4": """
        array words[32];
        acc total = 0;
        for i in 0..32 {
            w = load(words, i);
            b0 = w & 1;
            b1 = (w >> 1) & 1;
            b2 = (w >> 2) & 1;
            b3 = (w >> 3) & 1;
            total = total + b0 + b1 + b2 + b3;
        }
    """,
    # 1D 3-point stencil (hotspot-like) with saturation.
    "stencil3": """
        array grid[66];
        array result[64];
        const wc = 4;
        const wl = 1;
        const wr = 1;
        acc energy = 0;
        for i in 0..64 {
            left = load(grid, i);
            center = load(grid, i + 1);
            right = load(grid, i + 2);
            value = wl * left + wc * center + wr * right;
            clipped = min(value, 4095);
            store(result, i, clipped);
            energy = energy + clipped;
        }
    """,
    # Sum of absolute differences (SUSAN / motion-estimation flavour).
    "sad": """
        array ref[40];
        array cur[40];
        acc sad = 0;
        for i in 0..40 {
            r = load(ref, i);
            c = load(cur, i);
            d = abs(r - c);
            sad = sad + d;
        }
    """,
    # Running maximum with index tracking (stringsearch / nw flavour).
    "running_max": """
        array scores[50];
        acc best = 0;
        acc best_index = 0;
        for i in 0..50 {
            s = load(scores, i);
            better = s > best;
            best = better ? s : best;
            best_index = better ? i : best_index;
        }
    """,
}


def example_kernel_source(name: str) -> str:
    """Source text of one example kernel."""
    try:
        return EXAMPLE_KERNELS[name]
    except KeyError as exc:
        raise KeyError(
            f"unknown example kernel {name!r}; "
            f"available: {', '.join(sorted(EXAMPLE_KERNELS))}"
        ) from exc
