"""Abstract syntax tree of the loop-kernel language.

A program is a sequence of declarations followed by exactly one ``for`` loop
(the innermost loop the paper's flow would mark with a pragma). Statements
inside the loop body are scalar assignments and array stores; expressions are
integer arithmetic over declared values, loop-carried accumulators, constants
and array loads.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Union


# --------------------------------------------------------------------------- #
# Expressions
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class NumberLiteral:
    value: int


@dataclass(frozen=True)
class VariableRef:
    name: str


@dataclass(frozen=True)
class BinaryOp:
    op: str
    left: "Expression"
    right: "Expression"


@dataclass(frozen=True)
class UnaryOp:
    op: str
    operand: "Expression"


@dataclass(frozen=True)
class Ternary:
    condition: "Expression"
    if_true: "Expression"
    if_false: "Expression"


@dataclass(frozen=True)
class LoadExpr:
    array: str
    index: "Expression"


@dataclass(frozen=True)
class CallExpr:
    """Builtin calls: ``min(a, b)``, ``max(a, b)``, ``abs(a)``."""

    function: str
    arguments: Sequence["Expression"]


Expression = Union[NumberLiteral, VariableRef, BinaryOp, UnaryOp, Ternary,
                   LoadExpr, CallExpr]


# --------------------------------------------------------------------------- #
# Statements and declarations
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class Assignment:
    target: str
    value: Expression


@dataclass(frozen=True)
class StoreStatement:
    array: str
    index: Expression
    value: Expression


Statement = Union[Assignment, StoreStatement]


@dataclass(frozen=True)
class Declaration:
    """Top-level declaration.

    ``kind`` is one of:

    * ``"input"`` -- loop-invariant live-in scalar,
    * ``"const"`` -- compile-time constant scalar,
    * ``"acc"`` -- loop-carried scalar (reads before the re-definition see
      the previous iteration's value),
    * ``"array"`` -- memory region accessed with ``load`` / ``store``.
    """

    kind: str
    name: str
    value: Optional[int] = None
    size: Optional[int] = None


@dataclass(frozen=True)
class Loop:
    induction_variable: str
    start: int
    stop: int
    body: Sequence[Statement]

    @property
    def trip_count(self) -> int:
        return max(0, self.stop - self.start)


@dataclass(frozen=True)
class Program:
    declarations: Sequence[Declaration]
    loop: Loop

    def declaration(self, name: str) -> Optional[Declaration]:
        for decl in self.declarations:
            if decl.name == name:
                return decl
        return None

    def arrays(self) -> List[Declaration]:
        return [d for d in self.declarations if d.kind == "array"]

    def accumulators(self) -> List[Declaration]:
        return [d for d in self.declarations if d.kind == "acc"]
