"""Loop-kernel front-end: from source text to a DFG.

The paper extracts DFGs from the LLVM IR of pragma-annotated innermost
loops. This package provides the equivalent tooling for the reproduction: a
small C-like loop-kernel language, a recursive-descent parser and a DFG
extractor that recovers data dependencies, loop-carried dependencies (through
``acc`` variables) and memory operations.

Typical use::

    from repro.frontend import extract_dfg

    program = extract_dfg('''
        acc crc = 255;
        array data[64];
        for i in 0..64 {
            byte = load(data, i);
            crc = (crc ^ byte) & 65535;
        }
    ''')
    dfg = program.dfg          # ready for the mapper
    program.arrays             # {'data': 64}
"""

from repro.frontend.lexer import Token, TokenKind, tokenize, LexerError
from repro.frontend.parser import parse_program, ParseError
from repro.frontend.ast_nodes import (
    Program,
    Declaration,
    Loop,
    Assignment,
    StoreStatement,
    BinaryOp,
    UnaryOp,
    Ternary,
    LoadExpr,
    CallExpr,
    NumberLiteral,
    VariableRef,
)
from repro.frontend.extract import ExtractedProgram, extract_dfg, ExtractionError
from repro.frontend.kernels import EXAMPLE_KERNELS, example_kernel_source

__all__ = [
    "Token",
    "TokenKind",
    "tokenize",
    "LexerError",
    "parse_program",
    "ParseError",
    "Program",
    "Declaration",
    "Loop",
    "Assignment",
    "StoreStatement",
    "BinaryOp",
    "UnaryOp",
    "Ternary",
    "LoadExpr",
    "CallExpr",
    "NumberLiteral",
    "VariableRef",
    "ExtractedProgram",
    "extract_dfg",
    "ExtractionError",
    "EXAMPLE_KERNELS",
    "example_kernel_source",
]
