"""Recursive-descent parser for the loop-kernel language.

Grammar (simplified EBNF)::

    program   := declaration* loop
    declaration := ("input" | "const" | "acc") IDENT ("=" ("-")? NUMBER)? ";"
                 | "array" IDENT "[" NUMBER "]" ";"
    loop      := "for" IDENT "in" NUMBER ".." NUMBER "{" statement* "}"
    statement := IDENT "=" expr ";"
               | "store" "(" IDENT "," expr "," expr ")" ";"
    expr      := ternary
    ternary   := comparison ("?" expr ":" expr)?
    comparison:= bitor (("<"|"<="|">"|">="|"=="|"!=") bitor)?
    bitor     := bitxor ("|" bitxor)*
    bitxor    := bitand ("^" bitand)*
    bitand    := shift ("&" shift)*
    shift     := additive (("<<"|">>") additive)*
    additive  := multiplicative (("+"|"-") multiplicative)*
    multiplicative := unary (("*"|"/"|"%") unary)*
    unary     := ("-"|"~") unary | primary
    primary   := NUMBER | IDENT | "(" expr ")"
               | "load" "(" IDENT "," expr ")"
               | ("min"|"max") "(" expr "," expr ")"
               | "abs" "(" expr ")"
"""

from __future__ import annotations

from typing import List, Optional

from repro.frontend.ast_nodes import (
    Assignment,
    BinaryOp,
    CallExpr,
    Declaration,
    Expression,
    LoadExpr,
    Loop,
    NumberLiteral,
    Program,
    Statement,
    StoreStatement,
    Ternary,
    UnaryOp,
    VariableRef,
)
from repro.frontend.lexer import Token, TokenKind, parse_number, tokenize


class ParseError(ValueError):
    """Raised on malformed kernel source."""

    def __init__(self, message: str, token: Token) -> None:
        super().__init__(f"{message} (found {token.text!r} at line {token.line})")
        self.token = token


class _Parser:
    def __init__(self, tokens: List[Token]) -> None:
        self.tokens = tokens
        self.position = 0

    # -- token helpers ---------------------------------------------------- #
    def peek(self) -> Token:
        return self.tokens[self.position]

    def advance(self) -> Token:
        token = self.tokens[self.position]
        if token.kind is not TokenKind.EOF:
            self.position += 1
        return token

    def check(self, text: str) -> bool:
        return self.peek().text == text and self.peek().kind is not TokenKind.EOF

    def accept(self, text: str) -> bool:
        if self.check(text):
            self.advance()
            return True
        return False

    def expect(self, text: str) -> Token:
        if not self.check(text):
            raise ParseError(f"expected {text!r}", self.peek())
        return self.advance()

    def expect_kind(self, kind: TokenKind) -> Token:
        if self.peek().kind is not kind:
            raise ParseError(f"expected {kind.value}", self.peek())
        return self.advance()

    # -- grammar ----------------------------------------------------------- #
    def parse_program(self) -> Program:
        declarations: List[Declaration] = []
        while self.peek().text in ("input", "const", "acc", "array"):
            declarations.append(self.parse_declaration())
        loop = self.parse_loop()
        if self.peek().kind is not TokenKind.EOF:
            raise ParseError("unexpected trailing input", self.peek())
        return Program(declarations=tuple(declarations), loop=loop)

    def parse_declaration(self) -> Declaration:
        kind = self.advance().text
        name = self.expect_kind(TokenKind.IDENT).text
        value: Optional[int] = None
        size: Optional[int] = None
        if kind == "array":
            self.expect("[")
            size = parse_number(self.expect_kind(TokenKind.NUMBER).text)
            self.expect("]")
        elif self.accept("="):
            negative = self.accept("-")
            value = parse_number(self.expect_kind(TokenKind.NUMBER).text)
            if negative:
                value = -value
        self.expect(";")
        return Declaration(kind=kind, name=name, value=value, size=size)

    def parse_loop(self) -> Loop:
        self.expect("for")
        induction = self.expect_kind(TokenKind.IDENT).text
        self.expect("in")
        start = parse_number(self.expect_kind(TokenKind.NUMBER).text)
        self.expect("..")
        stop = parse_number(self.expect_kind(TokenKind.NUMBER).text)
        self.expect("{")
        body: List[Statement] = []
        while not self.check("}"):
            body.append(self.parse_statement())
        self.expect("}")
        return Loop(induction_variable=induction, start=start, stop=stop,
                    body=tuple(body))

    def parse_statement(self) -> Statement:
        if self.check("store"):
            self.advance()
            self.expect("(")
            array = self.expect_kind(TokenKind.IDENT).text
            self.expect(",")
            index = self.parse_expression()
            self.expect(",")
            value = self.parse_expression()
            self.expect(")")
            self.expect(";")
            return StoreStatement(array=array, index=index, value=value)
        target = self.expect_kind(TokenKind.IDENT).text
        self.expect("=")
        value = self.parse_expression()
        self.expect(";")
        return Assignment(target=target, value=value)

    # -- expressions -------------------------------------------------------- #
    def parse_expression(self) -> Expression:
        return self.parse_ternary()

    def parse_ternary(self) -> Expression:
        condition = self.parse_comparison()
        if self.accept("?"):
            if_true = self.parse_expression()
            self.expect(":")
            if_false = self.parse_expression()
            return Ternary(condition=condition, if_true=if_true, if_false=if_false)
        return condition

    def parse_comparison(self) -> Expression:
        left = self.parse_bitor()
        if self.peek().text in ("<", "<=", ">", ">=", "==", "!="):
            op = self.advance().text
            right = self.parse_bitor()
            return BinaryOp(op=op, left=left, right=right)
        return left

    def _parse_left_associative(self, operators, parse_operand) -> Expression:
        left = parse_operand()
        while self.peek().text in operators:
            op = self.advance().text
            right = parse_operand()
            left = BinaryOp(op=op, left=left, right=right)
        return left

    def parse_bitor(self) -> Expression:
        return self._parse_left_associative(("|",), self.parse_bitxor)

    def parse_bitxor(self) -> Expression:
        return self._parse_left_associative(("^",), self.parse_bitand)

    def parse_bitand(self) -> Expression:
        return self._parse_left_associative(("&",), self.parse_shift)

    def parse_shift(self) -> Expression:
        return self._parse_left_associative(("<<", ">>"), self.parse_additive)

    def parse_additive(self) -> Expression:
        return self._parse_left_associative(("+", "-"), self.parse_multiplicative)

    def parse_multiplicative(self) -> Expression:
        return self._parse_left_associative(("*", "/", "%"), self.parse_unary)

    def parse_unary(self) -> Expression:
        if self.peek().text in ("-", "~"):
            op = self.advance().text
            return UnaryOp(op=op, operand=self.parse_unary())
        return self.parse_primary()

    def parse_primary(self) -> Expression:
        token = self.peek()
        if token.kind is TokenKind.NUMBER:
            self.advance()
            return NumberLiteral(parse_number(token.text))
        if token.text == "(":
            self.advance()
            inner = self.parse_expression()
            self.expect(")")
            return inner
        if token.text == "load":
            self.advance()
            self.expect("(")
            array = self.expect_kind(TokenKind.IDENT).text
            self.expect(",")
            index = self.parse_expression()
            self.expect(")")
            return LoadExpr(array=array, index=index)
        if token.text in ("min", "max", "abs"):
            function = self.advance().text
            self.expect("(")
            arguments = [self.parse_expression()]
            while self.accept(","):
                arguments.append(self.parse_expression())
            self.expect(")")
            expected = 1 if function == "abs" else 2
            if len(arguments) != expected:
                raise ParseError(
                    f"{function} expects {expected} argument(s)", token
                )
            return CallExpr(function=function, arguments=tuple(arguments))
        if token.kind is TokenKind.IDENT:
            self.advance()
            return VariableRef(token.text)
        raise ParseError("expected an expression", token)


def parse_program(source: str) -> Program:
    """Parse kernel source text into a :class:`Program` AST."""
    return _Parser(tokenize(source)).parse_program()
