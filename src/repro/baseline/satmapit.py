"""Coupled space-time mapping (SAT-MapIt-style baseline).

For every candidate ``II`` (starting at ``mII``), a *single* SAT formula
simultaneously decides

* the start time of every DFG node (same mobility windows and precedence
  constraints as the decoupled time phase), and
* the PE executing every node,

with two families of coupling constraints:

* **exclusivity** -- at most one operation per (kernel slot, PE) pair, and
* **routability** -- the endpoints of every dependence are placed on
  identical or adjacent PEs.

The formula size therefore grows with ``nodes x II x PEs`` (the size of the
MRRG), which is exactly the scalability bottleneck the paper attributes to
SAT-MapIt: on large CGRAs the coupled encoding becomes huge and slow, while
the decoupled mapper's formulas stay small.

The encoding is *incremental*: the II-independent part (variables over the
full schedule horizon, data-dependence precedence, routability) is built
once per ``map()`` call; each (II, slack) attempt then opens a clause
scope (:meth:`repro.smt.csp.FiniteDomainProblem.push`), adds the
II-specific loop-carried precedence, capacity, and exclusivity clauses plus
the horizon restriction, solves, and pops the scope. Variable activities
and saved phases survive across attempts, so the mII -> II sweep does not
restart the search from scratch. The baseline honours a per-``map()``
timeout, mirroring the paper's 4000 s experimental budget; the timeout also
covers formula construction, which is part of the baseline's compilation
time.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional

from repro.arch.cgra import CGRA
from repro.core.config import BaselineConfig
from repro.core.mapper import (
    MappingResult,
    MappingStatus,
    begin_mapping,
    run_pre_mapping_opt,
)
from repro.core.mapping import Mapping
from repro.core.time_solver import Schedule
from repro.core.validation import assert_valid_mapping
from repro.smt.native import resolved_tier as native_resolved_tier
from repro.graphs.analysis import (
    critical_path_length,
    mobility_schedule,
    res_ii,
)
from repro.graphs.dfg import DFG
from repro.obs import hooks as obs_hooks
from repro.obs import trace as obs_trace
from repro.perf import PerfCounters, timed
from repro.smt.cnf import negate
from repro.smt.csp import FiniteDomainProblem, IntVar
from repro.smt.sat import SolveResult, SolveStatus


class _EncodingTimeout(Exception):
    """Internal: the timeout fired while the formula was being built."""


class _CoupledEncoding:
    """One coupled space-time instance, re-scoped per (II, slack) attempt."""

    def __init__(
        self,
        dfg: DFG,
        cgra: CGRA,
        max_slack: int,
        deadline: Optional[float] = None,
        perf: Optional[PerfCounters] = None,
        solver_backend: Optional[str] = None,
        legacy_sync: bool = False,
    ) -> None:
        self.dfg = dfg
        self.cgra = cgra
        self.deadline = deadline
        self.perf = perf
        self._needed_slack = max(
            0, res_ii(dfg, cgra.num_pes) - critical_path_length(dfg)
        )
        self.max_slack = max(max_slack, self._needed_slack)
        self.mobs = mobility_schedule(dfg, slack=self.max_slack)
        self.problem = FiniteDomainProblem(
            solver_cls=solver_backend, perf=perf, legacy_sync=legacy_sync
        )
        self.time_vars: Dict[int, IntVar] = {}
        self.place_vars: Dict[int, IntVar] = {}
        self._base_latest: Dict[int, int] = {}
        with timed(perf, "encode_seconds"):
            self._build_base()

    # ------------------------------------------------------------------ #
    def _check_deadline(self) -> None:
        if self.deadline is not None and time.monotonic() > self.deadline:
            raise _EncodingTimeout()

    def effective_slack(self, slack: int) -> int:
        return min(max(slack, self._needed_slack), self.max_slack)

    def _build_base(self) -> None:
        """II-independent encoding: variables, data precedence, routability,
        and per-node operation-support placement restrictions."""
        problem = self.problem
        num_pes = self.cgra.num_pes
        for node_id in self.dfg.node_ids():
            self.time_vars[node_id] = problem.new_int(
                f"t{node_id}", self.mobs.earliest(node_id), self.mobs.latest(node_id)
            )
            self._base_latest[node_id] = self.mobs.latest(node_id) - self.max_slack
            self.place_vars[node_id] = problem.new_int(f"p{node_id}", 0, num_pes - 1)
        self._check_deadline()
        self._add_op_support()
        for edge in self.dfg.edges():
            if edge.distance == 0:
                problem.add_ge(
                    self.time_vars[edge.dst],
                    self.time_vars[edge.src],
                    self.dfg.node(edge.src).latency,
                )
        self._check_deadline()
        self._add_routability()

    def _add_op_support(self) -> None:
        """Forbid placing a node on a PE that cannot execute its opcode."""
        for node in self.dfg.nodes():
            supporting = self.cgra.supporting_pes(node.opcode)
            if len(supporting) == self.cgra.num_pes:
                continue
            self.problem.restrict_domain(self.place_vars[node.id], supporting)

    def _add_routability(self) -> None:
        """Endpoints of every dependence on identical or adjacent PEs."""
        problem = self.problem
        add_clean = problem.cnf.add_clause_clean
        for a, b in sorted(self.dfg.undirected_edges()):
            self._check_deadline()
            place_a = self.place_vars[a]
            place_b = self.place_vars[b]
            for pe in range(self.cgra.num_pes):
                reachable = self.cgra.neighbors_or_self(pe)
                # placement literals of two distinct nodes: clean clause
                clause = [-problem.value_literal(place_a, pe)]
                clause.extend(
                    problem.value_literal(place_b, q) for q in sorted(reachable)
                )
                add_clean(clause)

    # ------------------------------------------------------------------ #
    # Scoped (II, slack) constraints
    # ------------------------------------------------------------------ #
    def _slot_literal(self, node_id: int, ii: int, slot: int):
        return self.problem.mod_indicator(self.time_vars[node_id], ii, slot)

    def _candidate_slots(self, node_id: int, ii: int, eff_slack: int) -> List[int]:
        earliest = self.mobs.earliest(node_id)
        latest = self._base_latest[node_id] + eff_slack
        return sorted({t % ii for t in range(earliest, latest + 1)})

    def _add_loop_carried(self, ii: int) -> None:
        for edge in self.dfg.edges():
            if edge.distance == 0:
                continue
            self.problem.add_ge(
                self.time_vars[edge.dst],
                self.time_vars[edge.src],
                self.dfg.node(edge.src).latency - edge.distance * ii,
            )

    def _add_capacity(self, ii: int) -> None:
        """Redundant per-slot capacity bound (prunes the coupled search)."""
        if self.dfg.num_nodes <= self.cgra.num_pes:
            return
        for slot in range(ii):
            literals = [
                self._slot_literal(node_id, ii, slot)
                for node_id in self.dfg.node_ids()
            ]
            self.problem.at_most(literals, self.cgra.num_pes)

    def _add_exclusivity(self, ii: int, eff_slack: int) -> None:
        """At most one operation per (kernel slot, PE) resource of the MRRG."""
        problem = self.problem
        add_clean = problem.cnf.add_clause_clean
        reserve = problem.cnf.pool.reserve
        num_pes = self.cgra.num_pes
        occupancy: List[List[List[int]]] = [
            [[] for _ in range(num_pes)] for _ in range(ii)
        ]
        for node_id in self.dfg.node_ids():
            self._check_deadline()
            place_var = self.place_vars[node_id]
            pe_literals = [problem.value_literal(place_var, pe)
                           for pe in range(num_pes)]
            for slot in self._candidate_slots(node_id, ii, eff_slack):
                slot_literal = self._slot_literal(node_id, ii, slot)
                clean = type(slot_literal) is int
                slot_occupancy = occupancy[slot]
                z = reserve(num_pes)  # one occupancy indicator per PE
                for pe in range(num_pes):
                    pe_literal = pe_literals[pe]
                    if clean and type(pe_literal) is int:
                        add_clean([-slot_literal, -pe_literal, z])
                    else:
                        problem.add_clause(
                            [negate(slot_literal), negate(pe_literal), z])
                    slot_occupancy[pe].append(z)
                    z += 1
        for slot_occupancy in occupancy:
            self._check_deadline()
            for literals in slot_occupancy:
                if len(literals) > 1:
                    problem.at_most(literals, 1)

    def _add_horizon(self, eff_slack: int) -> None:
        for node_id, var in self.time_vars.items():
            self.problem.add_clause([
                self.problem.le_literal(var, self._base_latest[node_id] + eff_slack)
            ])

    def attempt(
        self, ii: int, slack: int, timeout_seconds: Optional[float]
    ) -> SolveResult:
        """Solve one (II, slack) attempt inside a retractable clause scope."""
        eff_slack = self.effective_slack(slack)
        self.problem.push()
        try:
            with timed(self.perf, "encode_seconds"):
                self._add_horizon(eff_slack)
                self._add_loop_carried(ii)
                self._add_capacity(ii)
                self._check_deadline()
                self._add_exclusivity(ii, eff_slack)
            return self.problem.solve_detailed(timeout_seconds=timeout_seconds)
        finally:
            self.problem.pop()

    # ------------------------------------------------------------------ #
    def extract(self, ii: int, result: SolveResult) -> Mapping:
        solution = self.problem._extract(result)
        start_times = {
            node_id: solution.value(var) for node_id, var in self.time_vars.items()
        }
        placement = {
            node_id: solution.value(var) for node_id, var in self.place_vars.items()
        }
        schedule = Schedule(dfg=self.dfg, ii=ii, start_times=start_times)
        return Mapping(dfg=self.dfg, cgra=self.cgra, schedule=schedule,
                       placement=placement)


class SatMapItMapper:
    """Coupled baseline with the same ``map()`` interface as the mapper."""

    def __init__(self, cgra: CGRA, config: Optional[BaselineConfig] = None) -> None:
        self.cgra = cgra
        self.config = config if config is not None else BaselineConfig()

    def _max_ii(self, dfg: DFG, mii: int) -> int:
        if self.config.max_ii is not None:
            return max(self.config.max_ii, mii)
        return max(mii, critical_path_length(dfg) + self.config.slack)

    def map(self, dfg: DFG) -> MappingResult:
        """Map ``dfg`` with the coupled encoding; honours the timeout."""
        started = time.monotonic()
        self._perf = None
        with obs_hooks.engine_span("satmapit"):
            result = self._map_impl(dfg)
            obs_hooks.finish_engine_run(
                "satmapit", result, started, perf=self._perf
            )
        return result

    def _map_impl(self, dfg: DFG) -> MappingResult:
        dfg.validate()
        start = time.monotonic()
        budget = self.config.timeout_seconds
        deadline = start + budget if budget is not None else None
        perf = PerfCounters(detailed=self.config.profile)
        self._perf = perf
        perf.extra["engine"] = "satmapit"
        perf.extra["backend"] = self.config.solver_backend
        tier = native_resolved_tier(self.config.solver_backend)
        if tier is not None:
            perf.extra["solver_tier"] = tier

        # pre-mapping optimization shrinks the coupled encoding just like
        # the decoupled one: fewer nodes means fewer nodes x II x PEs vars
        dfg, opt_result = run_pre_mapping_opt(dfg, self.cgra, self.config)
        resource_ii, recurrence_ii, mii, infeasible = begin_mapping(dfg, self.cgra)
        if infeasible is not None:
            infeasible.total_seconds = time.monotonic() - start
            infeasible.opt = opt_result
            if opt_result is not None:
                infeasible.opt_seconds = opt_result.seconds
            infeasible.stats = perf.as_dict()
            return infeasible
        max_ii = self._max_ii(dfg, mii)
        result = MappingResult(
            status=MappingStatus.NO_SOLUTION,
            mii=mii,
            res_ii=resource_ii,
            rec_ii=recurrence_ii,
            opt=opt_result,
            opt_seconds=opt_result.seconds if opt_result is not None else 0.0,
        )

        max_slack = max(self.config.slack_candidates(), default=self.config.slack)
        try:
            encoding = _CoupledEncoding(
                dfg, self.cgra, max_slack, deadline=deadline, perf=perf,
                solver_backend=self.config.solver_backend,
                legacy_sync=self.config.legacy_solver_sync,
            )
        except _EncodingTimeout:
            result.status = MappingStatus.TIME_TIMEOUT
            result.message = "timed out while building the base encoding"
            result.total_seconds = time.monotonic() - start
            result.time_phase_seconds = result.total_seconds
            result.stats = perf.as_dict()
            return result

        # per-II attribution mirroring the decoupled engine's (the coupled
        # search has no space phase; everything is solver time)
        per_ii: List[Dict[str, object]] = []
        perf.extra["per_ii"] = per_ii

        for ii in range(mii, max_ii + 1):
            result.iis_tried += 1
            mapped = False
            timed_out = False
            attempted_slacks = set()
            ii_started = time.monotonic()
            schedules_before = result.schedules_tried
            ii_span = obs_trace.span("ii_attempt", ii=ii)
            ii_span.__enter__()
            for slack in self.config.slack_candidates():
                eff_slack = encoding.effective_slack(slack)
                if eff_slack in attempted_slacks:
                    continue
                attempted_slacks.add(eff_slack)
                remaining = None
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        result.status = MappingStatus.TIME_TIMEOUT
                        result.message = f"timed out before II={ii}"
                        timed_out = True
                        break
                try:
                    solve_result = encoding.attempt(ii, slack, remaining)
                except _EncodingTimeout:
                    result.status = MappingStatus.TIME_TIMEOUT
                    result.message = f"timed out while encoding II={ii}"
                    timed_out = True
                    break
                result.schedules_tried += 1
                if solve_result.status is SolveStatus.UNKNOWN:
                    result.status = MappingStatus.TIME_TIMEOUT
                    result.message = f"SAT solver timed out on II={ii}"
                    timed_out = True
                    break
                if solve_result.status is SolveStatus.UNSAT:
                    continue  # retry the same II with a longer horizon
                mapping = encoding.extract(ii, solve_result)
                if self.config.validate:
                    assert_valid_mapping(mapping)
                result.status = MappingStatus.SUCCESS
                result.mapping = mapping
                result.ii = ii
                mapped = True
                break
            ii_span.__exit__(None, None, None)
            obs_hooks.record_ii_attempt(
                "satmapit", time.monotonic() - ii_started
            )
            per_ii.append({
                "ii": ii,
                "time": round(time.monotonic() - ii_started, 6),
                "space": 0.0,
                "schedules": result.schedules_tried - schedules_before,
            })
            if mapped or timed_out:
                break

        result.total_seconds = time.monotonic() - start
        # the whole coupled search is "time phase" from the paper's viewpoint
        result.time_phase_seconds = result.total_seconds
        if result.status is MappingStatus.NO_SOLUTION and not result.message:
            result.message = f"no coupled mapping found for II in [{mii}, {max_ii}]"
        result.stats = perf.as_dict()
        return result
