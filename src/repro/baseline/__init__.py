"""SAT-MapIt-style coupled baseline mapper.

The paper compares its decoupled approach against SAT-MapIt (Tirelli et al.,
DATE 2023), which encodes placement and scheduling *jointly* over the MRRG
and hands the whole formula to a SAT solver. :mod:`repro.baseline.satmapit`
reimplements that strategy on top of the same SAT substrate used by the
decoupled time phase, so the comparison isolates exactly what the paper
studies: the cost of searching the coupled space-time space, which grows
with the number of PEs, versus the decoupled search, which does not.
"""

from repro.baseline.satmapit import SatMapItMapper

__all__ = ["SatMapItMapper"]
