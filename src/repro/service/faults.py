"""Deterministic fault injection for the service's chaos tests.

The harness is **off unless armed**: a fault plan is read from the
``REPRO_FAULTS`` environment variable (a JSON object), and almost every
fault only fires inside a *worker process* -- a process that called
:func:`mark_worker_process`, which :mod:`repro.service.procpool` does in
its child main loop.  The daemon (or a test process) can therefore set
``REPRO_FAULTS`` and submit jobs without ever killing itself.

Plan schema (every key optional; an empty/unset plan injects nothing)::

    {"kill_worker": {"phase": "start",     # start|engine|mid|result
                     "attempts": [0],      # job attempt numbers, or "all"
                     "signal": 9},         # or {"exit": 3} for exit codes
     "stall_worker": {"seconds": 30, "attempts": [0]},
     "slow_solver": {"seconds": 2.0},
     "torn_write": {"times": 1, "fraction": 0.5}}

Injection points:

* ``kill_worker`` -- the worker kills itself (default ``SIGKILL``) at a
  named phase of job execution: ``start`` (job received), ``engine``
  (immediately before ``engine.map``), ``mid`` (first improvement
  event), ``result`` (after the engine, before the result is shipped).
  ``attempts`` makes the plan deterministic across supervised retries:
  the fault fires only on the listed attempt numbers, so "crash twice,
  then succeed" is ``"attempts": [0, 1]`` -- no shared counter files, no
  racy state.
* ``stall_worker`` -- the worker suspends its heartbeat thread and
  sleeps, simulating a wedged C-level loop; the supervisor's heartbeat
  timeout is the detection path under test.
* ``slow_solver`` -- the worker sleeps *while heartbeating* before the
  engine runs, proving slowness alone never trips the stall detector.
* ``torn_write`` -- the next ``times`` result-store appends write only
  the leading ``fraction`` of the line and drop the rest (a simulated
  mid-``write()`` crash); this one fires in whichever process owns the
  store (the daemon), not just workers.

``repro.service.jobs`` and ``repro.service.store`` consult this module
at the injection points; ``docs/robustness.md`` documents the knobs.
"""

from __future__ import annotations

import json
import os
import signal as _signal
import threading
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

ENV_VAR = "REPRO_FAULTS"

#: kill phases a plan may name, in job-execution order
KILL_PHASES = ("start", "engine", "mid", "result")

_state_lock = threading.Lock()
_worker_process = False
_stalled = False
_torn_remaining: Optional[int] = None
_plan_cache: Optional[Tuple[Optional[str], "FaultPlan"]] = None


class FaultError(ValueError):
    """A malformed ``REPRO_FAULTS`` plan (fail loudly, not silently)."""


@dataclass(frozen=True)
class FaultPlan:
    """A parsed, validated fault plan (immutable; state lives module-side)."""

    kill_worker: Optional[Dict[str, object]] = None
    stall_worker: Optional[Dict[str, object]] = None
    slow_solver_delay: float = 0.0
    torn_write_times: int = 0
    torn_write_fraction: float = 0.5
    raw: Dict[str, object] = field(default_factory=dict)

    # ------------------------------------------------------------------ #
    @classmethod
    def parse(cls, text: Optional[str]) -> "FaultPlan":
        if not text:
            return cls()
        try:
            raw = json.loads(text)
        except ValueError as exc:
            raise FaultError(f"{ENV_VAR} is not valid JSON: {exc}") from exc
        if not isinstance(raw, dict):
            raise FaultError(f"{ENV_VAR} must be a JSON object")
        unknown = set(raw) - {"kill_worker", "stall_worker", "slow_solver",
                              "torn_write"}
        if unknown:
            raise FaultError(f"unknown fault(s): {sorted(unknown)}")

        kill = raw.get("kill_worker")
        if kill is not None:
            if not isinstance(kill, dict):
                raise FaultError("'kill_worker' must be an object")
            phase = kill.get("phase", "start")
            if phase not in KILL_PHASES:
                raise FaultError(
                    f"kill_worker phase {phase!r}; expected one of "
                    f"{KILL_PHASES}")
            cls._check_attempts(kill, "kill_worker")

        stall = raw.get("stall_worker")
        if stall is not None:
            if not isinstance(stall, dict) or \
                    not isinstance(stall.get("seconds", 30), (int, float)):
                raise FaultError("'stall_worker' needs numeric 'seconds'")
            cls._check_attempts(stall, "stall_worker")

        slow = 0.0
        if "slow_solver" in raw:
            spec = raw["slow_solver"]
            if not isinstance(spec, dict) or \
                    not isinstance(spec.get("seconds"), (int, float)):
                raise FaultError("'slow_solver' needs numeric 'seconds'")
            slow = float(spec["seconds"])

        torn_times, torn_fraction = 0, 0.5
        if "torn_write" in raw:
            spec = raw["torn_write"]
            if not isinstance(spec, dict):
                raise FaultError("'torn_write' must be an object")
            torn_times = int(spec.get("times", 1))
            torn_fraction = float(spec.get("fraction", 0.5))
            if not 0.0 < torn_fraction < 1.0:
                raise FaultError("'torn_write' fraction must be in (0, 1)")

        return cls(kill_worker=kill, stall_worker=stall,
                   slow_solver_delay=slow, torn_write_times=torn_times,
                   torn_write_fraction=torn_fraction, raw=raw)

    @staticmethod
    def _check_attempts(spec: Dict[str, object], name: str) -> None:
        attempts = spec.get("attempts", [0])
        if attempts == "all":
            return
        if (not isinstance(attempts, list)
                or not all(isinstance(a, int) for a in attempts)):
            raise FaultError(
                f"'{name}' attempts must be a list of ints or \"all\"")

    # ------------------------------------------------------------------ #
    @property
    def active(self) -> bool:
        return bool(self.raw)

    @staticmethod
    def _attempt_matches(spec: Dict[str, object], attempt: int) -> bool:
        attempts = spec.get("attempts", [0])
        return attempts == "all" or attempt in attempts

    def kill_action(self, phase: str,
                    attempt: int) -> Optional[Tuple[str, int]]:
        """``("signal", n)`` / ``("exit", code)`` if armed here, else None."""
        spec = self.kill_worker
        if spec is None or spec.get("phase", "start") != phase:
            return None
        if not self._attempt_matches(spec, attempt):
            return None
        if "exit" in spec:
            return ("exit", int(spec["exit"]))
        return ("signal", int(spec.get("signal", int(_signal.SIGKILL))))

    def maybe_kill(self, phase: str, attempt: int) -> None:
        """Kill the current process if the plan arms this (phase, attempt).

        Only ever fires inside a marked worker process -- the daemon and
        test processes are safe whatever the plan says.
        """
        if not _worker_process:
            return
        action = self.kill_action(phase, attempt)
        if action is None:
            return
        kind, value = action
        if kind == "exit":
            os._exit(value)
        os.kill(os.getpid(), value)

    def slow_solver_seconds(self) -> float:
        return self.slow_solver_delay if _worker_process else 0.0

    def stall_seconds(self, attempt: int) -> float:
        spec = self.stall_worker
        if spec is None or not _worker_process:
            return 0.0
        if not self._attempt_matches(spec, attempt):
            return 0.0
        return float(spec.get("seconds", 30.0))


# --------------------------------------------------------------------- #
# Module-level state (per-process)
# --------------------------------------------------------------------- #
def plan() -> FaultPlan:
    """The current plan from ``REPRO_FAULTS`` (parsed once per value)."""
    global _plan_cache
    text = os.environ.get(ENV_VAR)
    cached = _plan_cache
    if cached is not None and cached[0] == text:
        return cached[1]
    parsed = FaultPlan.parse(text)
    _plan_cache = (text, parsed)
    return parsed


def mark_worker_process() -> None:
    """Declare this process a crash-isolated worker (kills may fire)."""
    global _worker_process
    _worker_process = True


def in_worker_process() -> bool:
    return _worker_process


def begin_stall() -> None:
    """Suspend heartbeats (the worker's beat thread checks :func:`stalled`)."""
    global _stalled
    _stalled = True


def end_stall() -> None:
    global _stalled
    _stalled = False


def stalled() -> bool:
    return _stalled


def torn_write_cut(line_length: int) -> Optional[int]:
    """Byte index to cut the next store append at, or ``None``.

    Decrements the per-process ``torn_write`` budget; fires in whichever
    process performs the append (the daemon owns the store).
    """
    global _torn_remaining
    current = plan()
    if not current.torn_write_times:
        return None
    with _state_lock:
        if _torn_remaining is None:
            _torn_remaining = current.torn_write_times
        if _torn_remaining <= 0:
            return None
        _torn_remaining -= 1
    return max(1, int(line_length * current.torn_write_fraction))


def reset() -> None:
    """Clear cached plan and per-process fault state (tests)."""
    global _plan_cache, _torn_remaining, _stalled, _worker_process
    with _state_lock:
        _plan_cache = None
        _torn_remaining = None
        _stalled = False
        _worker_process = False
