"""A thin stdlib client for the compile service (``urllib`` only).

:class:`ServiceClient` wraps the HTTP API of :mod:`repro.service.server`
one method per endpoint, decoding JSON and raising :class:`ServiceError`
with the server's error code on non-2xx answers. It is what the tests
and ``repro-map map --remote`` use; nothing in it depends on the server
being in-process.

Typical round trip::

    client = ServiceClient("http://127.0.0.1:8780")
    job = client.submit({"benchmark": "crc32", "approach": "heuristic",
                         "strategy": "refine"})
    for event in client.events(job["id"]):      # live NDJSON stream
        print(event)
    job = client.wait(job["id"])                # terminal job view
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Dict, Iterator, Optional


class ServiceError(RuntimeError):
    """A non-2xx answer from the service, carrying its error envelope."""

    def __init__(self, status: int, code: str, message: str) -> None:
        super().__init__(f"{code} ({status}): {message}")
        self.status = status
        self.code = code


class ServiceClient:
    """One compile-service endpoint, addressed by base URL."""

    def __init__(self, base_url: str, timeout: float = 30.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    # ------------------------------------------------------------------ #
    def _request(self, method: str, path: str,
                 payload: Optional[Dict[str, object]] = None):
        data = None
        headers = {"Accept": "application/json"}
        if payload is not None:
            data = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(
            self.base_url + path, data=data, headers=headers, method=method)
        try:
            return urllib.request.urlopen(request, timeout=self.timeout)
        except urllib.error.HTTPError as exc:
            try:
                envelope = json.loads(exc.read().decode("utf-8"))
                error = envelope.get("error", {})
                raise ServiceError(exc.code,
                                   str(error.get("code", "unknown")),
                                   str(error.get("message", ""))) from exc
            except (ValueError, AttributeError):
                raise ServiceError(exc.code, "unknown", str(exc)) from exc

    def _json(self, method: str, path: str,
              payload: Optional[Dict[str, object]] = None) -> Dict[str, object]:
        with self._request(method, path, payload) as response:
            return json.loads(response.read().decode("utf-8"))

    # ------------------------------------------------------------------ #
    def health(self) -> Dict[str, object]:
        return self._json("GET", "/healthz")

    def engines(self) -> Dict[str, object]:
        return self._json("GET", "/v1/engines")

    def store_stats(self) -> Dict[str, object]:
        return self._json("GET", "/v1/store/stats")

    def metrics(self) -> str:
        """``GET /metrics`` -- raw Prometheus text exposition."""
        with self._request("GET", "/metrics") as response:
            return response.read().decode("utf-8")

    def submit(self, payload: Dict[str, object]) -> Dict[str, object]:
        """POST a mapping request; returns the job view (maybe done)."""
        return self._json("POST", "/v1/jobs", payload)["job"]

    def jobs(self) -> Dict[str, object]:
        return self._json("GET", "/v1/jobs")

    def job(self, job_id: str) -> Dict[str, object]:
        return self._json("GET", f"/v1/jobs/{job_id}")["job"]

    def cancel(self, job_id: str) -> Dict[str, object]:
        return self._json("DELETE", f"/v1/jobs/{job_id}")["job"]

    def events(self, job_id: str, start: int = 0,
               timeout: Optional[float] = None) -> Iterator[Dict[str, object]]:
        """Stream a job's NDJSON events live; ends at the terminal event.

        Every event carries the server's monotonic-anchored ``ts`` stamp
        (seconds since the Unix epoch, ordered even across clock steps)
        next to its payload fields; the ``--remote`` live printer shows
        it as a per-event offset.

        ``timeout`` bounds the *socket* idle time between lines, not the
        total stream duration -- a long-running job that keeps improving
        keeps the stream alive.
        """
        path = f"/v1/jobs/{job_id}/events"
        if start:
            path += f"?from={start}"
        request = urllib.request.Request(
            self.base_url + path, headers={"Accept": "application/x-ndjson"})
        try:
            response = urllib.request.urlopen(
                request, timeout=timeout if timeout is not None
                else self.timeout)
        except urllib.error.HTTPError as exc:
            envelope = json.loads(exc.read().decode("utf-8"))
            error = envelope.get("error", {})
            raise ServiceError(exc.code, str(error.get("code", "unknown")),
                               str(error.get("message", ""))) from exc
        with response:
            for line in response:
                line = line.strip()
                if line:
                    yield json.loads(line.decode("utf-8"))

    def wait(self, job_id: str, timeout: float = 120.0,
             poll_seconds: float = 0.05) -> Dict[str, object]:
        """Poll until the job is terminal; raises TimeoutError otherwise."""
        deadline = time.monotonic() + timeout
        while True:
            job = self.job(job_id)
            if job["status"] in ("done", "failed", "cancelled"):
                return job
            if time.monotonic() > deadline:
                raise TimeoutError(
                    f"job {job_id} still {job['status']} after {timeout}s")
            time.sleep(poll_seconds)

    def map(self, payload: Dict[str, object],
            timeout: float = 120.0) -> Dict[str, object]:
        """Submit and block until terminal: the one-call remote ``map()``."""
        job = self.submit(payload)
        if job["status"] in ("done", "failed", "cancelled"):
            return job
        return self.wait(job["id"], timeout=timeout)
