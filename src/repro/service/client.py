"""A thin stdlib client for the compile service (``urllib`` only).

:class:`ServiceClient` wraps the HTTP API of :mod:`repro.service.server`
one method per endpoint, decoding JSON and raising :class:`ServiceError`
with the server's error code on non-2xx answers. It is what the tests
and ``repro-map map --remote`` use; nothing in it depends on the server
being in-process.

Transient failures are retried: connection errors and 5xx answers on
idempotent requests (every GET, plus job submission -- the store is
content-addressed, so re-POSTing a payload lands on the same record)
back off exponentially with jitter, honoring a ``Retry-After`` header
when the server sends one (it does while draining for shutdown). After
the retry budget, or for anything non-retryable, the failure surfaces as
:class:`ServiceError` -- callers never see raw ``urllib`` exceptions.

Typical round trip::

    client = ServiceClient("http://127.0.0.1:8780")
    job = client.submit({"benchmark": "crc32", "approach": "heuristic",
                         "strategy": "refine"})
    for event in client.events(job["id"]):      # live NDJSON stream
        print(event)
    job = client.wait(job["id"])                # terminal job view
"""

from __future__ import annotations

import json
import random
import time
import urllib.error
import urllib.request
from typing import Dict, Iterator, Optional

from repro.obs import trace as obs_trace

#: job statuses after which polling stops (matches jobs.TERMINAL_STATUSES)
TERMINAL = ("done", "failed", "cancelled", "journaled")


class ServiceError(RuntimeError):
    """A failed service interaction, carrying the server's error envelope.

    ``status`` is the HTTP status, or ``0`` when the server could not be
    reached at all (connection refused, reset, DNS failure); ``code`` is
    the server's machine-readable error code (``"unreachable"`` for the
    status-0 case).
    """

    def __init__(self, status: int, code: str, message: str) -> None:
        super().__init__(f"{code} ({status}): {message}")
        self.status = status
        self.code = code

    @property
    def retryable(self) -> bool:
        """Whether retrying the same request could plausibly succeed."""
        return self.status == 0 or self.status >= 500 or self.status == 503


def _error_from_http(exc: urllib.error.HTTPError) -> ServiceError:
    try:
        envelope = json.loads(exc.read().decode("utf-8"))
        error = envelope.get("error", {})
        return ServiceError(exc.code, str(error.get("code", "unknown")),
                            str(error.get("message", "")))
    except (ValueError, AttributeError, OSError):
        return ServiceError(exc.code, "unknown", str(exc))


def _retry_after_seconds(exc: urllib.error.HTTPError) -> Optional[float]:
    value = exc.headers.get("Retry-After") if exc.headers else None
    if value is None:
        return None
    try:
        seconds = float(value)
    except ValueError:
        return None
    return seconds if seconds >= 0 else None


class ServiceClient:
    """One compile-service endpoint, addressed by base URL.

    Args:
        base_url: e.g. ``http://127.0.0.1:8780``.
        timeout: per-request socket timeout in seconds.
        retries: transient-failure retries per idempotent request
            (``0`` disables retrying entirely).
        backoff_seconds: first retry delay; doubles per attempt up to
            ``backoff_cap_seconds``, with up to 50% random jitter added.
    """

    def __init__(self, base_url: str, timeout: float = 30.0,
                 retries: int = 3, backoff_seconds: float = 0.2,
                 backoff_cap_seconds: float = 2.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout
        self.retries = max(0, int(retries))
        self.backoff_seconds = backoff_seconds
        self.backoff_cap_seconds = backoff_cap_seconds

    # ------------------------------------------------------------------ #
    def _backoff(self, attempt: int, retry_after: Optional[float]) -> None:
        if retry_after is not None:
            time.sleep(min(retry_after, self.backoff_cap_seconds * 4))
            return
        delay = min(self.backoff_seconds * (2 ** attempt),
                    self.backoff_cap_seconds)
        time.sleep(delay + random.uniform(0.0, delay / 2))

    def _request(self, method: str, path: str,
                 payload: Optional[Dict[str, object]] = None,
                 headers: Optional[Dict[str, str]] = None,
                 timeout: Optional[float] = None,
                 retries: Optional[int] = None):
        data = None
        send_headers = {"Accept": "application/json"}
        if headers:
            send_headers.update(headers)
        if payload is not None:
            data = json.dumps(payload).encode("utf-8")
            send_headers["Content-Type"] = "application/json"
        # GETs are trivially idempotent; so is job submission, because
        # the request is content-addressed server-side -- a duplicate
        # POST lands on the same job/store record, never a second run
        idempotent = method in ("GET", "HEAD") or (
            method == "POST" and path == "/v1/jobs")
        budget = self.retries if retries is None else max(0, int(retries))
        if not idempotent:
            budget = 0
        attempt = 0
        while True:
            request = urllib.request.Request(
                self.base_url + path, data=data, headers=dict(send_headers),
                method=method)
            try:
                return urllib.request.urlopen(
                    request,
                    timeout=self.timeout if timeout is None else timeout)
            except urllib.error.HTTPError as exc:
                error = _error_from_http(exc)
                if error.retryable and attempt < budget:
                    self._backoff(attempt, _retry_after_seconds(exc))
                    attempt += 1
                    continue
                raise error from exc
            except (urllib.error.URLError, OSError, TimeoutError) as exc:
                if attempt < budget:
                    self._backoff(attempt, None)
                    attempt += 1
                    continue
                reason = getattr(exc, "reason", None) or exc
                raise ServiceError(
                    0, "unreachable",
                    f"{method} {self.base_url}{path}: {reason}") from exc

    def _json(self, method: str, path: str,
              payload: Optional[Dict[str, object]] = None,
              headers: Optional[Dict[str, str]] = None,
              timeout: Optional[float] = None,
              retries: Optional[int] = None) -> Dict[str, object]:
        with self._request(method, path, payload, headers=headers,
                           timeout=timeout, retries=retries) as response:
            return json.loads(response.read().decode("utf-8"))

    # ------------------------------------------------------------------ #
    def health(self) -> Dict[str, object]:
        return self._json("GET", "/healthz")

    def engines(self) -> Dict[str, object]:
        return self._json("GET", "/v1/engines")

    def store_stats(self) -> Dict[str, object]:
        return self._json("GET", "/v1/store/stats")

    def metrics(self) -> str:
        """``GET /metrics`` -- raw Prometheus text exposition."""
        with self._request("GET", "/metrics") as response:
            return response.read().decode("utf-8")

    def profile(self, seconds: Optional[float] = None) -> str:
        """``GET /v1/debug/profile`` -- collapsed-stack flame-graph text.

        ``seconds`` samples a live window server-side (the request
        blocks that long); ``None`` returns the cumulative table.
        """
        path = "/v1/debug/profile"
        request_timeout = self.timeout
        if seconds is not None:
            path += f"?seconds={float(seconds)}"
            request_timeout = self.timeout + float(seconds)
        with self._request("GET", path,
                           timeout=request_timeout) as response:
            return response.read().decode("utf-8")

    def submit(self, payload: Dict[str, object],
               traceparent: Optional[str] = None) -> Dict[str, object]:
        """POST a mapping request; returns the job view (maybe done).

        Every submission carries a ``traceparent`` header: the given
        one, or one minted from the calling thread's trace context (a
        fresh trace id when there is none).  The server adopts the
        trace id and echoes it back as ``job["trace_id"]``, so client
        spans and the service's spans/events/log records correlate.
        """
        if traceparent is None:
            trace_id = obs_trace.current_trace_id() or \
                obs_trace.new_trace_id()
            traceparent = obs_trace.format_traceparent(
                trace_id, obs_trace.current_span_id())
        return self._json("POST", "/v1/jobs", payload,
                          headers={"traceparent": traceparent})["job"]

    def jobs(self) -> Dict[str, object]:
        return self._json("GET", "/v1/jobs")

    def job(self, job_id: str, timeout: Optional[float] = None,
            retries: Optional[int] = None) -> Dict[str, object]:
        return self._json("GET", f"/v1/jobs/{job_id}", timeout=timeout,
                          retries=retries)["job"]

    def cancel(self, job_id: str) -> Dict[str, object]:
        return self._json("DELETE", f"/v1/jobs/{job_id}")["job"]

    def events(self, job_id: str, start: int = 0,
               timeout: Optional[float] = None) -> Iterator[Dict[str, object]]:
        """Stream a job's NDJSON events live; ends at the terminal event.

        Every event carries the server's monotonic-anchored ``ts`` stamp
        (seconds since the Unix epoch, ordered even across clock steps)
        next to its payload fields; the ``--remote`` live printer shows
        it as a per-event offset.

        ``timeout`` bounds the *socket* idle time between lines, not the
        total stream duration -- a long-running job that keeps improving
        keeps the stream alive. Connection failures while opening the
        stream retry like any idempotent request; a drop mid-stream
        surfaces as :class:`ServiceError` (resume with ``start=``).
        """
        path = f"/v1/jobs/{job_id}/events"
        if start:
            path += f"?from={start}"
        response = self._request(
            "GET", path, headers={"Accept": "application/x-ndjson"},
            timeout=timeout)
        with response:
            try:
                for line in response:
                    line = line.strip()
                    if line:
                        yield json.loads(line.decode("utf-8"))
            except (OSError, ValueError) as exc:
                raise ServiceError(
                    0, "stream_interrupted",
                    f"event stream for {job_id} dropped: {exc}") from exc

    def wait(self, job_id: str, timeout: float = 120.0,
             poll_seconds: float = 0.05) -> Dict[str, object]:
        """Poll until the job is terminal; raises TimeoutError otherwise.

        ``timeout`` is a monotonic *overall* deadline: it also caps each
        poll's socket timeout, so a hung server surfaces as
        ``TimeoutError`` when the deadline passes, not after the full
        per-request socket timeout on top of it. Transient poll failures
        (connection refused, 5xx) keep polling until the deadline.
        """
        deadline = time.monotonic() + timeout
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise TimeoutError(
                    f"job {job_id} not terminal after {timeout}s")
            try:
                job = self.job(job_id,
                               timeout=max(min(self.timeout, remaining),
                                           0.05),
                               retries=0)
            except ServiceError as exc:
                if not exc.retryable:
                    raise
                job = None
            if job is not None and job["status"] in TERMINAL:
                return job
            if time.monotonic() + poll_seconds > deadline:
                status = job["status"] if job is not None else "unreachable"
                raise TimeoutError(
                    f"job {job_id} still {status} after {timeout}s")
            time.sleep(poll_seconds)

    def map(self, payload: Dict[str, object],
            timeout: float = 120.0) -> Dict[str, object]:
        """Submit and block until terminal: the one-call remote ``map()``."""
        job = self.submit(payload)
        if job["status"] in TERMINAL:
            return job
        return self.wait(job["id"], timeout=timeout)
