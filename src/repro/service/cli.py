"""``repro-serve`` -- run or query the persistent compile service.

Two subcommands:

* ``repro-serve start`` binds the HTTP server and blocks until
  interrupted. ``--store`` points at the content-addressed result store
  (a directory for the sharded layout, a ``.jsonl`` path for the legacy
  flat file); without it results are cached in memory only.
* ``repro-serve status`` queries a running server's ``/healthz`` and
  prints it as JSON -- the scriptable liveness probe.

See ``docs/service.md`` for the HTTP API the started server exposes and
``repro-map map --remote URL`` for the client side.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro import __version__


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-serve",
        description="persistent CGRA compile service "
                    "(content-addressed result store + worker pool)",
    )
    parser.add_argument("--version", action="version",
                        version=f"%(prog)s {__version__}")
    sub = parser.add_subparsers(dest="command", required=True)

    start = sub.add_parser(
        "start", help="run the compile server (blocks until interrupted)")
    start.add_argument("--host", default="127.0.0.1",
                       help="address to bind (default: %(default)s)")
    start.add_argument("--port", type=int, default=8780,
                       help="port to bind (default: %(default)s)")
    start.add_argument("--store", default=None, metavar="PATH",
                       help="result store: a directory (sharded) or a "
                            ".jsonl file (flat); default: in-memory only")
    start.add_argument("--workers", type=int, default=2,
                       help="mapping worker threads (default: %(default)s)")
    start.add_argument("--default-budget", type=float, default=30.0,
                       metavar="SECONDS",
                       help="budget for requests that do not set one "
                            "(default: %(default)s)")
    start.add_argument("--max-budget", type=float, default=300.0,
                       metavar="SECONDS",
                       help="hard cap on per-request budgets "
                            "(default: %(default)s)")
    start.add_argument("--quiet", action="store_true",
                       help="suppress per-request access logging")
    start.add_argument("--trace-dir", default=None, metavar="DIR",
                       help="enable tracing and write one merged Chrome "
                            "trace-event JSON per executed job into DIR "
                            "(view in Perfetto; see docs/observability.md)")
    start.add_argument("--log-json", default=None, metavar="PATH",
                       help="append structured JSONL run records "
                            "(requests, jobs, engine runs) to PATH")

    status = sub.add_parser(
        "status", help="print a running server's /healthz as JSON")
    status.add_argument("--url", default="http://127.0.0.1:8780",
                        help="server base URL (default: %(default)s)")
    return parser


def _cmd_start(args: argparse.Namespace) -> int:
    from repro.service.jobs import MappingService
    from repro.service.server import create_server

    if args.workers < 1:
        print("error: --workers must be >= 1", file=sys.stderr)
        return 2
    if args.log_json:
        from repro.obs import logjson

        logjson.configure(args.log_json)
    service = MappingService(
        store_path=args.store,
        workers=args.workers,
        default_budget_seconds=args.default_budget,
        max_budget_seconds=args.max_budget,
        trace_dir=args.trace_dir,
    )
    server = create_server(service, host=args.host, port=args.port,
                           quiet=args.quiet)
    store_note = args.store if args.store else "in-memory"
    print(f"repro-serve listening on http://{args.host}:{args.port} "
          f"({args.workers} worker(s), store: {store_note})")
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("\nshutting down")
    finally:
        server.shutdown()
        service.shutdown()
    return 0


def _cmd_status(args: argparse.Namespace) -> int:
    from repro.service.client import ServiceClient, ServiceError

    client = ServiceClient(args.url)
    try:
        health = client.health()
    except (ServiceError, OSError) as exc:
        print(f"error: cannot reach {args.url}: {exc}", file=sys.stderr)
        return 1
    print(json.dumps(health, indent=2, sort_keys=True))
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "start":
        return _cmd_start(args)
    return _cmd_status(args)


if __name__ == "__main__":
    sys.exit(main())
