"""``repro-serve`` -- run or query the persistent compile service.

Three subcommands:

* ``repro-serve start`` binds the HTTP server and blocks until it
  receives SIGTERM/SIGINT, then drains: submissions get 503 +
  ``Retry-After``, in-flight jobs finish (up to ``--drain-timeout``),
  still-queued jobs are checkpointed to a journal next to the store and
  recovered by the next start. ``--store`` points at the
  content-addressed result store (a directory for the sharded layout, a
  ``.jsonl`` path for the legacy flat file); without it results are
  cached in memory only.
* ``repro-serve status`` queries a running server's ``/healthz`` and
  prints it as JSON -- the scriptable liveness probe. ``--watch`` turns
  it into a one-shot operator dashboard instead: queue depth, per-engine
  latency percentiles interpolated from the ``/metrics`` histograms,
  crash/retry/restart counters, dropped trace spans, and SLO burn
  against the p95-latency and error-rate objectives (defaults built in;
  override with ``--slo-config FILE``).
* ``repro-serve compact`` rewrites a store's files dropping torn,
  keyless and superseded lines (atomic per-file rename; live records are
  preserved byte-identically).

See ``docs/service.md`` for the HTTP API the started server exposes,
``docs/robustness.md`` for the failure-handling lifecycle, and
``repro-map map --remote URL`` for the client side.
"""

from __future__ import annotations

import argparse
import json
import re
import signal
import sys
import threading
from typing import Dict, List, Optional, Tuple

from repro import __version__


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-serve",
        description="persistent CGRA compile service "
                    "(content-addressed result store + worker pool)",
    )
    parser.add_argument("--version", action="version",
                        version=f"%(prog)s {__version__}")
    sub = parser.add_subparsers(dest="command", required=True)

    start = sub.add_parser(
        "start", help="run the compile server (blocks until signalled)")
    start.add_argument("--host", default="127.0.0.1",
                       help="address to bind (default: %(default)s)")
    start.add_argument("--port", type=int, default=8780,
                       help="port to bind (default: %(default)s)")
    start.add_argument("--store", default=None, metavar="PATH",
                       help="result store: a directory (sharded) or a "
                            ".jsonl file (flat); default: in-memory only")
    start.add_argument("--workers", type=int, default=2,
                       help="mapping workers (default: %(default)s)")
    start.add_argument("--execution", choices=("process", "thread"),
                       default="process",
                       help="run jobs in crash-isolated worker processes "
                            "with supervised restarts, or in the legacy "
                            "in-thread pool (default: %(default)s)")
    start.add_argument("--max-retries", type=int, default=2,
                       help="times a job whose worker crashed or stalled "
                            "is requeued before failing "
                            "(default: %(default)s)")
    start.add_argument("--heartbeat-timeout", type=float, default=30.0,
                       metavar="SECONDS",
                       help="busy-worker heartbeat silence tolerated "
                            "before the supervisor declares it stalled "
                            "(default: %(default)s)")
    start.add_argument("--drain-timeout", type=float, default=30.0,
                       metavar="SECONDS",
                       help="on SIGTERM/SIGINT, wait this long for "
                            "in-flight jobs before exiting "
                            "(default: %(default)s)")
    start.add_argument("--default-budget", type=float, default=30.0,
                       metavar="SECONDS",
                       help="budget for requests that do not set one "
                            "(default: %(default)s)")
    start.add_argument("--max-budget", type=float, default=300.0,
                       metavar="SECONDS",
                       help="hard cap on per-request budgets "
                            "(default: %(default)s)")
    start.add_argument("--quiet", action="store_true",
                       help="suppress per-request access logging")
    start.add_argument("--trace-dir", default=None, metavar="DIR",
                       help="enable tracing and write one merged Chrome "
                            "trace-event JSON per executed job into DIR "
                            "(view in Perfetto; see docs/observability.md)")
    start.add_argument("--log-json", default=None, metavar="PATH",
                       help="append structured JSONL run records "
                            "(requests, jobs, engine runs) to PATH")
    start.add_argument("--profile-interval", type=float, default=0.01,
                       metavar="SECONDS",
                       help="CPU-time interval of the always-on sampling "
                            "profiler in the daemon and its workers, "
                            "served at GET /v1/debug/profile "
                            "(0 disables; default: %(default)s)")

    status = sub.add_parser(
        "status", help="print a running server's /healthz as JSON")
    status.add_argument("--url", default="http://127.0.0.1:8780",
                        help="server base URL (default: %(default)s)")
    status.add_argument("--watch", action="store_true",
                        help="render a one-shot operator dashboard "
                             "(queue, latency percentiles, crash/retry "
                             "counters, SLO burn) instead of raw JSON")
    status.add_argument("--slo-config", default=None, metavar="FILE",
                        help="JSON file overriding the SLO objectives "
                             "used by --watch (keys: p95_latency_seconds, "
                             "error_rate)")

    compact = sub.add_parser(
        "compact",
        help="rewrite a result store dropping torn and superseded lines")
    compact.add_argument("--store", required=True, metavar="PATH",
                         help="store to compact: a directory (sharded) "
                              "or a .jsonl file (flat)")
    return parser


def _cmd_start(args: argparse.Namespace) -> int:
    from repro.obs import logjson, profiler
    from repro.service.jobs import MappingService
    from repro.service.server import create_server

    if args.workers < 1:
        print("error: --workers must be >= 1", file=sys.stderr)
        return 2
    if args.log_json:
        logjson.configure(args.log_json)
    if args.profile_interval > 0:
        # the daemon's own continuous profile (the HTTP/dispatch side);
        # worker children start theirs from the job spec.  SIGPROF must
        # be installed from the main thread, which _cmd_start is.
        profiler.start(args.profile_interval)
    service = MappingService(
        store_path=args.store,
        workers=args.workers,
        default_budget_seconds=args.default_budget,
        max_budget_seconds=args.max_budget,
        trace_dir=args.trace_dir,
        execution=args.execution,
        max_retries=args.max_retries,
        heartbeat_timeout_seconds=args.heartbeat_timeout,
        profile_interval_seconds=args.profile_interval,
    )
    recovered = service.recover_journal()
    if recovered:
        print(f"recovered {recovered} journaled job(s) from a previous "
              "drain")
    server = create_server(service, host=args.host, port=args.port,
                           quiet=args.quiet)

    stop_requested = threading.Event()

    def handle_signal(signum: int, _frame: object) -> None:
        # stop accepting immediately (submissions start answering 503);
        # the main thread takes it from there
        service.begin_drain()
        stop_requested.set()

    try:
        signal.signal(signal.SIGTERM, handle_signal)
        signal.signal(signal.SIGINT, handle_signal)
    except ValueError:  # pragma: no cover - not the main thread
        pass

    serve_thread = threading.Thread(target=server.serve_forever,
                                    name="repro-serve-http", daemon=True)
    serve_thread.start()
    store_note = args.store if args.store else "in-memory"
    print(f"repro-serve listening on http://{args.host}:{args.port} "
          f"({args.workers} {args.execution} worker(s), "
          f"store: {store_note})", flush=True)
    try:
        while not stop_requested.wait(timeout=0.2):
            pass
    except KeyboardInterrupt:
        service.begin_drain()

    # drain with HTTP still up: in-flight event streams finish, new
    # submissions see 503 + Retry-After, queued work is journaled
    print(f"\ndraining (up to {args.drain_timeout:.0f}s) ...", flush=True)
    summary = service.drain(timeout=args.drain_timeout)
    server.shutdown()
    server.server_close()
    service.shutdown()
    if summary["journaled"]:
        print(f"journaled {summary['journaled']} queued job(s); "
              "they will be recovered on the next start")
    if summary["running"]:
        print(f"abandoned in-flight job(s): "
              f"{', '.join(summary['running'])}", file=sys.stderr)
    logjson.close()
    profiler.stop()
    print("shutdown complete")
    return 0


#: --watch SLO objectives when no --slo-config file is given
DEFAULT_SLO = {"p95_latency_seconds": 5.0, "error_rate": 0.01}

_SAMPLE_RE = re.compile(
    r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(?:\{([^{}]*)\})? (\+Inf|-?[0-9.e+-]+)")
_LABEL_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="([^"]*)"')


def _parse_exposition(text: str) -> Dict[str, List[Tuple[Dict[str, str],
                                                         float]]]:
    """Prometheus text exposition -> ``{name: [(labels, value), ...]}``."""
    samples: Dict[str, List[Tuple[Dict[str, str], float]]] = {}
    for line in text.splitlines():
        if not line or line.startswith("#"):
            continue
        match = _SAMPLE_RE.match(line)
        if match is None:
            continue
        name, raw_labels, raw_value = match.groups()
        labels = dict(_LABEL_RE.findall(raw_labels or ""))
        value = float("inf") if raw_value == "+Inf" else float(raw_value)
        samples.setdefault(name, []).append((labels, value))
    return samples


def _histogram_quantile(buckets: List[Tuple[float, float]],
                        quantile: float) -> Optional[float]:
    """Prometheus-style quantile estimate from cumulative ``le`` buckets.

    ``buckets`` is ``[(upper_bound, cumulative_count), ...]``; linear
    interpolation within the bucket the target rank falls into, like
    ``histogram_quantile()`` in PromQL. ``None`` when there are no
    observations.
    """
    buckets = sorted(buckets)
    if not buckets or buckets[-1][1] <= 0:
        return None
    total = buckets[-1][1]
    target = quantile * total
    previous_bound, previous_count = 0.0, 0.0
    for bound, cumulative in buckets:
        if cumulative >= target:
            if bound == float("inf"):
                return previous_bound  # open-ended top bucket
            width = cumulative - previous_count
            fraction = ((target - previous_count) / width) if width else 1.0
            return previous_bound + (bound - previous_bound) * fraction
        previous_bound, previous_count = bound, cumulative
    return buckets[-1][0]


def _load_slo(path: Optional[str]) -> Dict[str, float]:
    objectives = dict(DEFAULT_SLO)
    if path:
        with open(path, encoding="utf-8") as handle:
            loaded = json.load(handle)
        for key in objectives:
            if key in loaded:
                objectives[key] = float(loaded[key])
    return objectives


def _cmd_status_watch(args: argparse.Namespace, health: Dict[str, object],
                      metrics_text: str) -> int:
    from repro.reporting.tables import Table

    try:
        slo = _load_slo(args.slo_config)
    except (OSError, ValueError) as exc:
        print(f"error: cannot read --slo-config: {exc}", file=sys.stderr)
        return 2
    samples = _parse_exposition(metrics_text)

    counters = health.get("counters") or {}
    obs = health.get("observability") or {}
    overview = Table(
        headers=["Signal", "Value"],
        title=f"repro-serve {args.url} -- {health.get('status')}, "
              f"up {float(health.get('uptime_seconds', 0.0)):.0f}s",
    )
    overview.add_row("workers", f"{health.get('workers')} "
                                f"({health.get('execution')})")
    overview.add_row("queue depth", health.get("queued"))
    overview.add_row("jobs submitted", counters.get("submitted", 0))
    overview.add_row("cache hits", counters.get("cache_hits", 0))
    overview.add_row("failed", counters.get("failed", 0))
    overview.add_row("worker crashes", counters.get("worker_crashes", 0))
    overview.add_row("job retries", counters.get("retries", 0))
    overview.add_row("backend demotions", counters.get("demotions", 0))
    overview.add_row("trace spans dropped",
                     obs.get("trace_dropped_spans", 0))
    overview.add_row("profiler",
                     "sampling" if obs.get("profile_sampling") else "off")
    print(overview.render())

    # Per-engine II-attempt latency percentiles, interpolated from the
    # /metrics histogram buckets the same way PromQL would.
    by_engine: Dict[str, List[Tuple[float, float]]] = {}
    for labels, value in samples.get("repro_ii_attempt_seconds_bucket", []):
        engine = labels.get("engine", "?")
        bound = float(labels["le"]) if labels.get("le") not in (None, "+Inf") \
            else float("inf")
        by_engine.setdefault(engine, []).append((bound, value))
    latency = Table(
        headers=["Engine", "p50", "p90", "p95", "p99", "count"],
        title="II-attempt latency (seconds, interpolated)",
    )
    all_buckets: Dict[float, float] = {}
    for engine in sorted(by_engine):
        buckets = by_engine[engine]
        for bound, value in buckets:
            all_buckets[bound] = all_buckets.get(bound, 0.0) + value
        count = int(max(v for _, v in buckets))
        cells = [engine]
        for quantile in (0.50, 0.90, 0.95, 0.99):
            estimate = _histogram_quantile(buckets, quantile)
            cells.append("-" if estimate is None else f"{estimate:.4f}")
        latency.add_row(*cells, count)
    print()
    print(latency.render() if by_engine
          else "(no II attempts recorded yet)")

    # SLO burn: how much of each objective the observed value consumes
    # (1.0 = exactly at objective, >1.0 = burning error budget).
    p95 = _histogram_quantile(sorted(all_buckets.items()), 0.95) \
        if all_buckets else None
    submitted = float(counters.get("submitted", 0) or 0)
    failed = float(counters.get("failed", 0) or 0)
    error_rate = (failed / submitted) if submitted else 0.0
    burn = Table(
        headers=["Objective", "Target", "Observed", "Burn"],
        title="SLO burn",
    )
    latency_burn = ("-" if p95 is None
                    else f"{p95 / slo['p95_latency_seconds']:.2f}x")
    burn.add_row("p95 II-attempt latency",
                 f"{slo['p95_latency_seconds']:g}s",
                 "-" if p95 is None else f"{p95:.4f}s", latency_burn)
    rate_burn = (f"{error_rate / slo['error_rate']:.2f}x"
                 if slo["error_rate"] > 0 else "-")
    burn.add_row("job error rate", f"{slo['error_rate']:.2%}",
                 f"{error_rate:.2%}", rate_burn)
    print()
    print(burn.render())
    breached = ((p95 is not None and p95 > slo["p95_latency_seconds"])
                or (slo["error_rate"] > 0
                    and error_rate > slo["error_rate"]))
    if breached:
        print("\nSLO breached")
    return 1 if breached else 0


def _cmd_status(args: argparse.Namespace) -> int:
    from repro.service.client import ServiceClient, ServiceError

    client = ServiceClient(args.url)
    try:
        health = client.health()
        if args.watch:
            return _cmd_status_watch(args, health, client.metrics())
    except (ServiceError, OSError) as exc:
        print(f"error: cannot reach {args.url}: {exc}", file=sys.stderr)
        return 1
    print(json.dumps(health, indent=2, sort_keys=True))
    return 0


def _cmd_compact(args: argparse.Namespace) -> int:
    from repro.service.store import ResultStore

    store = ResultStore(args.store)
    try:
        summary = store.compact()
    except OSError as exc:
        print(f"error: cannot compact {args.store}: {exc}", file=sys.stderr)
        return 1
    print(json.dumps(summary, indent=2, sort_keys=True))
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "start":
        return _cmd_start(args)
    if args.command == "compact":
        return _cmd_compact(args)
    return _cmd_status(args)


if __name__ == "__main__":
    sys.exit(main())
