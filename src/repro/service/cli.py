"""``repro-serve`` -- run or query the persistent compile service.

Three subcommands:

* ``repro-serve start`` binds the HTTP server and blocks until it
  receives SIGTERM/SIGINT, then drains: submissions get 503 +
  ``Retry-After``, in-flight jobs finish (up to ``--drain-timeout``),
  still-queued jobs are checkpointed to a journal next to the store and
  recovered by the next start. ``--store`` points at the
  content-addressed result store (a directory for the sharded layout, a
  ``.jsonl`` path for the legacy flat file); without it results are
  cached in memory only.
* ``repro-serve status`` queries a running server's ``/healthz`` and
  prints it as JSON -- the scriptable liveness probe.
* ``repro-serve compact`` rewrites a store's files dropping torn,
  keyless and superseded lines (atomic per-file rename; live records are
  preserved byte-identically).

See ``docs/service.md`` for the HTTP API the started server exposes,
``docs/robustness.md`` for the failure-handling lifecycle, and
``repro-map map --remote URL`` for the client side.
"""

from __future__ import annotations

import argparse
import json
import signal
import sys
import threading
from typing import List, Optional

from repro import __version__


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-serve",
        description="persistent CGRA compile service "
                    "(content-addressed result store + worker pool)",
    )
    parser.add_argument("--version", action="version",
                        version=f"%(prog)s {__version__}")
    sub = parser.add_subparsers(dest="command", required=True)

    start = sub.add_parser(
        "start", help="run the compile server (blocks until signalled)")
    start.add_argument("--host", default="127.0.0.1",
                       help="address to bind (default: %(default)s)")
    start.add_argument("--port", type=int, default=8780,
                       help="port to bind (default: %(default)s)")
    start.add_argument("--store", default=None, metavar="PATH",
                       help="result store: a directory (sharded) or a "
                            ".jsonl file (flat); default: in-memory only")
    start.add_argument("--workers", type=int, default=2,
                       help="mapping workers (default: %(default)s)")
    start.add_argument("--execution", choices=("process", "thread"),
                       default="process",
                       help="run jobs in crash-isolated worker processes "
                            "with supervised restarts, or in the legacy "
                            "in-thread pool (default: %(default)s)")
    start.add_argument("--max-retries", type=int, default=2,
                       help="times a job whose worker crashed or stalled "
                            "is requeued before failing "
                            "(default: %(default)s)")
    start.add_argument("--heartbeat-timeout", type=float, default=30.0,
                       metavar="SECONDS",
                       help="busy-worker heartbeat silence tolerated "
                            "before the supervisor declares it stalled "
                            "(default: %(default)s)")
    start.add_argument("--drain-timeout", type=float, default=30.0,
                       metavar="SECONDS",
                       help="on SIGTERM/SIGINT, wait this long for "
                            "in-flight jobs before exiting "
                            "(default: %(default)s)")
    start.add_argument("--default-budget", type=float, default=30.0,
                       metavar="SECONDS",
                       help="budget for requests that do not set one "
                            "(default: %(default)s)")
    start.add_argument("--max-budget", type=float, default=300.0,
                       metavar="SECONDS",
                       help="hard cap on per-request budgets "
                            "(default: %(default)s)")
    start.add_argument("--quiet", action="store_true",
                       help="suppress per-request access logging")
    start.add_argument("--trace-dir", default=None, metavar="DIR",
                       help="enable tracing and write one merged Chrome "
                            "trace-event JSON per executed job into DIR "
                            "(view in Perfetto; see docs/observability.md)")
    start.add_argument("--log-json", default=None, metavar="PATH",
                       help="append structured JSONL run records "
                            "(requests, jobs, engine runs) to PATH")

    status = sub.add_parser(
        "status", help="print a running server's /healthz as JSON")
    status.add_argument("--url", default="http://127.0.0.1:8780",
                        help="server base URL (default: %(default)s)")

    compact = sub.add_parser(
        "compact",
        help="rewrite a result store dropping torn and superseded lines")
    compact.add_argument("--store", required=True, metavar="PATH",
                         help="store to compact: a directory (sharded) "
                              "or a .jsonl file (flat)")
    return parser


def _cmd_start(args: argparse.Namespace) -> int:
    from repro.obs import logjson
    from repro.service.jobs import MappingService
    from repro.service.server import create_server

    if args.workers < 1:
        print("error: --workers must be >= 1", file=sys.stderr)
        return 2
    if args.log_json:
        logjson.configure(args.log_json)
    service = MappingService(
        store_path=args.store,
        workers=args.workers,
        default_budget_seconds=args.default_budget,
        max_budget_seconds=args.max_budget,
        trace_dir=args.trace_dir,
        execution=args.execution,
        max_retries=args.max_retries,
        heartbeat_timeout_seconds=args.heartbeat_timeout,
    )
    recovered = service.recover_journal()
    if recovered:
        print(f"recovered {recovered} journaled job(s) from a previous "
              "drain")
    server = create_server(service, host=args.host, port=args.port,
                           quiet=args.quiet)

    stop_requested = threading.Event()

    def handle_signal(signum: int, _frame: object) -> None:
        # stop accepting immediately (submissions start answering 503);
        # the main thread takes it from there
        service.begin_drain()
        stop_requested.set()

    try:
        signal.signal(signal.SIGTERM, handle_signal)
        signal.signal(signal.SIGINT, handle_signal)
    except ValueError:  # pragma: no cover - not the main thread
        pass

    serve_thread = threading.Thread(target=server.serve_forever,
                                    name="repro-serve-http", daemon=True)
    serve_thread.start()
    store_note = args.store if args.store else "in-memory"
    print(f"repro-serve listening on http://{args.host}:{args.port} "
          f"({args.workers} {args.execution} worker(s), "
          f"store: {store_note})", flush=True)
    try:
        while not stop_requested.wait(timeout=0.2):
            pass
    except KeyboardInterrupt:
        service.begin_drain()

    # drain with HTTP still up: in-flight event streams finish, new
    # submissions see 503 + Retry-After, queued work is journaled
    print(f"\ndraining (up to {args.drain_timeout:.0f}s) ...", flush=True)
    summary = service.drain(timeout=args.drain_timeout)
    server.shutdown()
    server.server_close()
    service.shutdown()
    if summary["journaled"]:
        print(f"journaled {summary['journaled']} queued job(s); "
              "they will be recovered on the next start")
    if summary["running"]:
        print(f"abandoned in-flight job(s): "
              f"{', '.join(summary['running'])}", file=sys.stderr)
    logjson.close()
    print("shutdown complete")
    return 0


def _cmd_status(args: argparse.Namespace) -> int:
    from repro.service.client import ServiceClient, ServiceError

    client = ServiceClient(args.url)
    try:
        health = client.health()
    except (ServiceError, OSError) as exc:
        print(f"error: cannot reach {args.url}: {exc}", file=sys.stderr)
        return 1
    print(json.dumps(health, indent=2, sort_keys=True))
    return 0


def _cmd_compact(args: argparse.Namespace) -> int:
    from repro.service.store import ResultStore

    store = ResultStore(args.store)
    try:
        summary = store.compact()
    except OSError as exc:
        print(f"error: cannot compact {args.store}: {exc}", file=sys.stderr)
        return 1
    print(json.dumps(summary, indent=2, sort_keys=True))
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "start":
        return _cmd_start(args)
    if args.command == "compact":
        return _cmd_compact(args)
    return _cmd_status(args)


if __name__ == "__main__":
    sys.exit(main())
