"""The content-addressed mapping-result store.

This module owns the *key derivation* and the *persistence format* shared
by the batch experiment cache and the compile service:

**Key derivation.** A result is addressed by :func:`content_key`: the
SHA-256 digest (truncated to 24 hex characters) of the canonical JSON
serialisation (sorted keys, no whitespace variance) of the *configuration
record* that produced it. Everything that can change the result must be in
the record -- the DFG content (not its name), the resolved fabric, the
engine, optimization level/passes, solver backend, the resolved RNG seed
of the stochastic engines, and the time budget -- and nothing else, so
equal configurations collide onto one key whatever their spelling.
:meth:`repro.experiments.batch.BatchCase.cache_key` and
:meth:`repro.service.jobs.MapRequest.store_record` both build their
records under this contract.

**Persistence.** Two layouts, one class:

* *sharded directory* (the service's layout): ``root/shards/<xx>.jsonl``
  where ``xx`` is the first two hex characters of the key, giving up to
  256 shard files that stay small and append-contended only by requests
  that share a prefix. Every record is one JSON line ``{"key": ...,
  "record": ...}`` written with a single ``write()`` call, so concurrent
  appenders interleave whole lines (POSIX append semantics), and a torn
  final line from a crash is skipped by the loader.
* *single JSONL file* (the historical batch-cache layout, selected by a
  path ending in ``.jsonl``): the same line format the batch runner has
  always written (``{"key": ..., "case": ..., "result": ...}`` plus
  optional ``{"header": ...}`` provenance lines, which carry no key and
  are ignored by the loader).

**Readers never write.** Opening a store never creates directories,
files, or header lines; all writes happen inside :meth:`ResultStore.put`
(and the header, when one is configured, is written lazily right before
the first record). A store opened with ``writable=False`` refuses
:meth:`~ResultStore.put` outright -- client-mode opens are guaranteed
side-effect-free.
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import Dict, Iterator, Optional, Tuple

from repro.obs import logjson, metrics
from repro.obs import trace as obs_trace

#: truncated-digest length; 96 bits of SHA-256 -- collision-safe for any
#: realistic store size while keeping keys short enough to read in logs
KEY_HEX_CHARS = 24

#: number of leading key characters that select a shard file (256 shards)
SHARD_PREFIX_CHARS = 2


def content_key(record: Dict[str, object]) -> str:
    """The store key of a configuration record.

    ``record`` must be JSON-serialisable; the key is the truncated SHA-256
    of its canonical dump (``sort_keys=True``), so key equality is exactly
    structural equality of the record.
    """
    payload = json.dumps(record, sort_keys=True)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:KEY_HEX_CHARS]


def file_content_hash(path: str) -> str:
    """Full SHA-256 of a file's bytes (arch-spec files in cache keys)."""
    with open(path, "rb") as handle:
        return hashlib.sha256(handle.read()).hexdigest()


class ResultStore:
    """A content-addressed record store over sharded (or single) JSONL.

    Args:
        path: a directory (sharded layout) or a ``*.jsonl`` file path
            (the flat batch-cache layout).
        writable: when ``False`` the store is a pure reader --
            :meth:`put` raises and nothing on disk is ever created or
            modified, not even for a path that does not exist yet.
        header: optional provenance record; written once as a keyless
            ``{"header": ...}`` line immediately before the first
            :meth:`put` of this store instance (never on open, so a run
            that only *reads* leaves the file byte-identical).
    """

    def __init__(
        self,
        path: str,
        writable: bool = True,
        header: Optional[Dict[str, object]] = None,
    ) -> None:
        self.path = path
        self.writable = writable
        self.header = header
        self._sharded = not path.endswith(".jsonl")
        self._index: Optional[Dict[str, Dict[str, object]]] = None
        self._header_written = False
        self._appends = 0
        # load-time hygiene counters: lines the loader had to skip
        # (torn/foreign -> skipped_lines, keyless provenance headers ->
        # header_lines), surfaced via stats() and /v1/store/stats
        self._skipped_lines = 0
        self._header_lines = 0

    # ------------------------------------------------------------------ #
    # Reading
    # ------------------------------------------------------------------ #
    def _shard_path(self, key: str) -> str:
        return os.path.join(
            self.path, "shards", f"{key[:SHARD_PREFIX_CHARS]}.jsonl"
        )

    def _iter_files(self) -> Iterator[str]:
        if not self._sharded:
            if os.path.exists(self.path):
                yield self.path
            return
        shard_dir = os.path.join(self.path, "shards")
        if not os.path.isdir(shard_dir):
            return
        for name in sorted(os.listdir(shard_dir)):
            if name.endswith(".jsonl"):
                yield os.path.join(shard_dir, name)

    def _iter_records(self, path: str) -> Iterator[Tuple[str, Dict[str, object]]]:
        with open(path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except ValueError:
                    # torn trailing line from a crash, or a foreign file:
                    # skipped, but no longer silently
                    self._skipped_lines += 1
                    continue
                if not isinstance(record, dict):
                    self._skipped_lines += 1
                    continue
                key = record.get("key")
                if not isinstance(key, str):
                    # keyless provenance headers are expected; anything
                    # else keyless is a foreign record worth counting
                    if "header" in record:
                        self._header_lines += 1
                    else:
                        self._skipped_lines += 1
                    continue
                yield key, record

    def _load(self) -> Dict[str, Dict[str, object]]:
        if self._index is None:
            self._index = {}
            self._skipped_lines = 0
            self._header_lines = 0
            for path in self._iter_files():
                for key, record in self._iter_records(path):
                    self._index[key] = record
            if self._skipped_lines:
                metrics.inc("repro_store_skipped_lines_total",
                            self._skipped_lines)
                logjson.log(
                    "store_warning",
                    path=self.path,
                    skipped_lines=self._skipped_lines,
                    header_lines=self._header_lines,
                    message="skipped malformed store lines during load",
                    job=obs_trace.current_trace() or None,
                    trace_id=obs_trace.current_trace_id() or None,
                )
        return self._index

    def get(self, key: str) -> Optional[Dict[str, object]]:
        """The full stored line-record for ``key``, or ``None``."""
        return self._load().get(key)

    def __contains__(self, key: str) -> bool:
        return key in self._load()

    def __len__(self) -> int:
        return len(self._load())

    def keys(self):
        return self._load().keys()

    def stats(self) -> Dict[str, object]:
        """Size/layout summary (the service's ``/v1/store/stats``)."""
        index = self._load()
        shards = 0
        size_bytes = 0
        for path in self._iter_files():
            shards += 1
            try:
                size_bytes += os.path.getsize(path)
            except OSError:  # pragma: no cover - raced with compaction
                pass
        return {
            "path": self.path,
            "layout": "sharded" if self._sharded else "jsonl",
            "records": len(index),
            "files": shards,
            "size_bytes": size_bytes,
            "appends_this_session": self._appends,
            "skipped_lines": self._skipped_lines,
            "header_lines": self._header_lines,
            "writable": self.writable,
        }

    # ------------------------------------------------------------------ #
    # Writing
    # ------------------------------------------------------------------ #
    def _append_line(self, path: str, text: str) -> None:
        # one write() call per line: concurrent appenders (batch workers,
        # service workers) interleave whole records, never fragments
        from repro.service import faults

        line = text + "\n"
        cut = faults.torn_write_cut(len(line))
        with open(path, "a", encoding="utf-8") as handle:
            if cut is not None:
                # injected torn write: the line stops mid-record, exactly
                # what a crash between write() and close() leaves behind
                handle.write(line[:cut])
                handle.flush()
                os.fsync(handle.fileno())
                logjson.log("fault_torn_write", path=path, cut=cut,
                            length=len(line))
                return
            handle.write(line)
            handle.flush()
            os.fsync(handle.fileno())

    def _target_path(self, key: str) -> str:
        if not self._sharded:
            return self.path
        shard_dir = os.path.join(self.path, "shards")
        os.makedirs(shard_dir, exist_ok=True)
        return self._shard_path(key)

    def put(self, key: str, record: Dict[str, object]) -> None:
        """Append ``record`` under ``key`` and index it in memory.

        ``record`` is stored as the line ``{"key": key, **record}`` --
        callers choose the payload fields (the batch runner stores
        ``case``/``result``, the service stores ``request``/``result``).
        The configured header, if any, is written lazily before the first
        record of this instance.
        """
        if not self.writable:
            raise PermissionError(
                f"result store {self.path!r} was opened read-only"
            )
        if "key" in record and record["key"] != key:
            raise ValueError("record carries a conflicting 'key' field")
        line_record = {"key": key, **record}
        target = self._target_path(key)
        if self.header is not None and not self._header_written:
            self._append_line(target if not self._sharded
                              else os.path.join(self.path, "header.jsonl"),
                              json.dumps({"header": self.header},
                                         sort_keys=True))
            self._header_written = True
        self._append_line(target, json.dumps(line_record, sort_keys=True))
        self._appends += 1
        self._load()[key] = line_record

    # ------------------------------------------------------------------ #
    # Maintenance
    # ------------------------------------------------------------------ #
    def compact(self) -> Dict[str, object]:
        """Rewrite the store's files, dropping dead lines.

        Dropped: torn/unparseable lines, keyless non-header records, and
        superseded duplicates (several appends under one key; the last
        occurrence wins, matching the loader). Every surviving record and
        header line is preserved **byte-identically** -- the original
        line text is carried over, never re-serialized. Each file is
        rewritten to a temp file and atomically renamed into place (files
        left with nothing live are removed); a file that is already clean
        is not touched at all.
        """
        if not self.writable:
            raise PermissionError(
                f"result store {self.path!r} was opened read-only")
        files = 0
        rewritten = 0
        removed_files = 0
        dropped_lines = 0
        records = 0
        for path in list(self._iter_files()):
            files += 1
            with open(path, "r", encoding="utf-8") as handle:
                raw_lines = handle.read().splitlines()
            last_for_key: Dict[str, int] = {}
            kinds: list = []  # ("record", key) | ("header",) | ("drop",)
            for index, line in enumerate(raw_lines):
                stripped = line.strip()
                kind = ("drop",)
                if stripped:
                    try:
                        parsed = json.loads(stripped)
                    except ValueError:
                        parsed = None
                    if isinstance(parsed, dict):
                        key = parsed.get("key")
                        if isinstance(key, str):
                            kind = ("record", key)
                            last_for_key[key] = index
                        elif "header" in parsed:
                            kind = ("header",)
                kinds.append(kind)
            keep = []
            for index, kind in enumerate(kinds):
                if kind[0] == "header" or (
                        kind[0] == "record"
                        and last_for_key[kind[1]] == index):
                    keep.append(raw_lines[index])
                else:
                    dropped_lines += 1
            records += len(last_for_key)
            if len(keep) == len(raw_lines):
                continue  # already clean; leave the file untouched
            if not keep:
                os.remove(path)
                removed_files += 1
                continue
            tmp = path + ".compact.tmp"
            with open(tmp, "w", encoding="utf-8") as handle:
                handle.write("\n".join(keep) + "\n")
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp, path)
            rewritten += 1
        self._index = None  # force a reload; skipped-line counters reset
        summary = {
            "path": self.path,
            "files": files,
            "rewritten": rewritten,
            "removed_files": removed_files,
            "dropped_lines": dropped_lines,
            "records": records,
        }
        logjson.log("store_compact", **summary)
        return summary
