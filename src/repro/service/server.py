"""The HTTP front of the compile service (stdlib ``http.server`` only).

The wire protocol is plain JSON over HTTP/1.1 with one streaming
exception: ``GET /v1/jobs/<id>/events`` answers NDJSON (one JSON event
per line, flushed as produced) and closes when the job reaches a
terminal status. Full endpoint reference, payload schema and error
codes live in ``docs/service.md``; the request/job semantics live in
:mod:`repro.service.jobs`.

Routes::

    GET    /healthz              liveness + counters + store stats
    GET    /metrics              Prometheus text exposition (repro.obs)
    GET    /v1/engines           engine registry (names, aliases, blurbs)
    POST   /v1/jobs              submit; 200 on a store hit, 202 queued
    GET    /v1/jobs              list job summaries
    GET    /v1/jobs/<id>         one job, result included when done
    GET    /v1/jobs/<id>/events  NDJSON event stream (``?from=N`` resumes)
    DELETE /v1/jobs/<id>         request cancellation
    GET    /v1/store/stats       result-store shard statistics
    GET    /v1/debug/profile     collapsed-stack flame-graph text
                                 (``?seconds=N`` samples a live window)

Submissions may carry a W3C-style ``traceparent`` header; its trace id
is adopted as the job's distributed trace id (see docs/observability.md)
and echoed back in the job view.

Errors are always ``{"error": {"code": ..., "message": ...}}`` with the
matching HTTP status (400 ``bad_request``, 404 ``not_found``,
405 ``method_not_allowed``, 500 ``internal``, and -- while the daemon is
draining for shutdown -- 503 ``draining`` with a ``Retry-After`` header
on submissions).
"""

from __future__ import annotations

import json
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, Optional, Tuple
from urllib.parse import parse_qs, urlsplit

from repro.obs import logjson, metrics, profiler
from repro.service.jobs import (
    MappingService,
    RequestError,
    ServiceUnavailable,
)

#: bound on accepted request bodies; a kernel or DFG payload is small,
#: anything bigger is a mistake or abuse
MAX_BODY_BYTES = 4 * 1024 * 1024

#: longest live sampling window /v1/debug/profile will hold a handler
#: thread open for
MAX_PROFILE_WINDOW_SECONDS = 30.0


def _engine_listing() -> Dict[str, object]:
    from repro.core.engine import (
        ENGINE_ALIASES,
        ENGINE_DESCRIPTIONS,
        ENGINE_NAMES,
    )

    return {
        "engines": [
            {
                "name": name,
                "description": ENGINE_DESCRIPTIONS[name],
                "aliases": sorted(a for a, c in ENGINE_ALIASES.items()
                                  if c == name and a != name),
            }
            for name in ENGINE_NAMES
        ]
    }


class ServiceHandler(BaseHTTPRequestHandler):
    """Dispatches requests onto the handler thread's shared service."""

    server_version = "repro-serve/1"
    protocol_version = "HTTP/1.1"

    # ------------------------------------------------------------------ #
    @property
    def service(self) -> MappingService:
        return self.server.service  # type: ignore[attr-defined]

    def log_message(self, format: str, *args: object) -> None:
        # the structured run log always gets the access record; the
        # ad-hoc stderr line only without --quiet
        logjson.log("http_access", client=self.address_string(),
                    line=format % args)
        if getattr(self.server, "quiet", False):
            return
        BaseHTTPRequestHandler.log_message(self, format, *args)

    def _send_json(self, status: int, payload: Dict[str, object],
                   extra_headers: Optional[Dict[str, object]] = None) -> None:
        body = (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (extra_headers or {}).items():
            self.send_header(name, str(value))
        self.end_headers()
        self.wfile.write(body)

    def _send_error_json(self, status: int, code: str, message: str) -> None:
        self._send_json(status, {"error": {"code": code, "message": message}})

    def _read_body(self) -> Dict[str, object]:
        length = int(self.headers.get("Content-Length") or 0)
        if length <= 0:
            raise RequestError("a JSON request body is required")
        if length > MAX_BODY_BYTES:
            raise RequestError(
                f"request body exceeds {MAX_BODY_BYTES} bytes")
        raw = self.rfile.read(length)
        try:
            payload = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise RequestError(f"invalid JSON body: {exc}") from exc
        if not isinstance(payload, dict):
            raise RequestError("request body must be a JSON object")
        return payload

    def _route(self) -> Tuple[str, Optional[str], Optional[str],
                              Dict[str, list]]:
        """``(collection, job_id, subresource, query)`` for the URL."""
        parts = urlsplit(self.path)
        query = parse_qs(parts.query)
        segments = [s for s in parts.path.split("/") if s]
        if segments[:1] == ["healthz"]:
            return "healthz", None, None, query
        if segments[:1] == ["metrics"]:
            return "metrics", None, None, query
        if segments[:1] != ["v1"]:
            return "", None, None, query
        rest = segments[1:]
        if not rest:
            return "", None, None, query
        head = rest[0]
        if head == "jobs":
            job_id = rest[1] if len(rest) > 1 else None
            sub = rest[2] if len(rest) > 2 else None
            if len(rest) > 3:
                return "", None, None, query
            return "jobs", job_id, sub, query
        if rest == ["engines"]:
            return "engines", None, None, query
        if rest == ["store", "stats"]:
            return "store_stats", None, None, query
        if rest == ["debug", "profile"]:
            return "debug_profile", None, None, query
        return "", None, None, query

    def _send_metrics(self) -> None:
        """``GET /metrics``: the registry in Prometheus text exposition.

        Gauges that describe *current* state (queue depth, store size)
        are refreshed at scrape time so the exposition is live even when
        nothing recently moved them.
        """
        service = self.service
        metrics.set_gauge("repro_service_queue_depth",
                          service._queue.qsize())
        if service.store is not None:
            stats = service.store.stats()
            metrics.set_gauge("repro_store_records", stats["records"])
            metrics.set_gauge("repro_store_shards", stats["files"])
            metrics.set_gauge("repro_store_size_bytes", stats["size_bytes"])
        body = metrics.render().encode("utf-8")
        self.send_response(200)
        self.send_header("Content-Type",
                         "text/plain; version=0.0.4; charset=utf-8")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_profile(self, query: Dict[str, list]) -> None:
        """``GET /v1/debug/profile``: collapsed-stack flame-graph text.

        ``?seconds=N`` samples a live window: the handler thread snapshots
        the merged sample table, sleeps ``N`` seconds (capped), and
        returns only the stacks that accrued in between -- "where is CPU
        time going *right now*".  Without ``seconds`` the cumulative
        table since daemon start is returned.
        """
        seconds = 0.0
        if "seconds" in query:
            try:
                seconds = float(query["seconds"][0])
            except (ValueError, IndexError) as exc:
                raise RequestError("'seconds' must be a number") from exc
            if seconds < 0:
                raise RequestError("'seconds' must be >= 0")
            seconds = min(seconds, MAX_PROFILE_WINDOW_SECONDS)
        if seconds:
            before = profiler.cumulative()
            time.sleep(seconds)
            counts = profiler.window(before, profiler.cumulative())
        else:
            counts = profiler.cumulative()
        body = profiler.render(counts).encode("utf-8")
        self.send_response(200)
        self.send_header("Content-Type", "text/plain; charset=utf-8")
        self.send_header("Content-Length", str(len(body)))
        self.send_header("X-Profile-Interval-Seconds",
                         repr(profiler.interval()))
        self.end_headers()
        self.wfile.write(body)

    # ------------------------------------------------------------------ #
    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        try:
            collection, job_id, sub, query = self._route()
            metrics.inc("repro_http_requests_total", method="GET",
                        route=collection or "unknown")
            if collection == "healthz":
                self._send_json(200, self.service.health())
            elif collection == "metrics":
                self._send_metrics()
            elif collection == "engines":
                self._send_json(200, _engine_listing())
            elif collection == "store_stats":
                store = self.service.store
                self._send_json(200, {
                    "store": store.stats() if store is not None else None})
            elif collection == "debug_profile":
                self._send_profile(query)
            elif collection == "jobs" and job_id is None:
                jobs = [job.view(include_result=False)
                        for job in self.service.jobs.values()]
                self._send_json(200, {"jobs": jobs})
            elif collection == "jobs" and sub is None:
                job = self.service.get(job_id)
                self._send_json(200, {"job": job.view()})
            elif collection == "jobs" and sub == "events":
                self._stream_events(job_id, query)
            else:
                self._send_error_json(404, "not_found",
                                      f"no such resource: {self.path}")
        except KeyError as exc:
            self._send_error_json(404, "not_found", str(exc))
        except RequestError as exc:
            self._send_error_json(400, "bad_request", str(exc))
        except BrokenPipeError:
            pass  # client went away mid-stream; nothing to answer
        except Exception as exc:  # pragma: no cover - defensive
            self._send_error_json(500, "internal", repr(exc))

    def do_POST(self) -> None:  # noqa: N802
        try:
            collection, job_id, sub, _ = self._route()
            metrics.inc("repro_http_requests_total", method="POST",
                        route=collection or "unknown")
            if collection != "jobs" or job_id is not None or sub is not None:
                self._send_error_json(404, "not_found",
                                      f"no such resource: {self.path}")
                return
            payload = self._read_body()
            job = self.service.submit(
                payload, traceparent=self.headers.get("traceparent"))
            # a store hit completes synchronously: answer 200 with the
            # full result; a miss is queued work, answer 202 Accepted
            if job.status == "done":
                self._send_json(200, {"job": job.view()})
            else:
                self._send_json(202, {"job": job.view(include_result=False)})
        except ServiceUnavailable as exc:
            # draining for shutdown: tell well-behaved clients when to
            # come back (the client's submit retry honors Retry-After)
            self._send_json(
                503,
                {"error": {"code": "draining", "message": str(exc)}},
                extra_headers={"Retry-After": exc.retry_after})
        except RequestError as exc:
            self._send_error_json(400, "bad_request", str(exc))
        except Exception as exc:  # pragma: no cover - defensive
            self._send_error_json(500, "internal", repr(exc))

    def do_DELETE(self) -> None:  # noqa: N802
        try:
            collection, job_id, sub, _ = self._route()
            metrics.inc("repro_http_requests_total", method="DELETE",
                        route=collection or "unknown")
            if collection != "jobs" or job_id is None or sub is not None:
                self._send_error_json(404, "not_found",
                                      f"no such resource: {self.path}")
                return
            job = self.service.cancel(job_id)
            self._send_json(200, {"job": job.view(include_result=False)})
        except KeyError as exc:
            self._send_error_json(404, "not_found", str(exc))
        except Exception as exc:  # pragma: no cover - defensive
            self._send_error_json(500, "internal", repr(exc))

    def do_PUT(self) -> None:  # noqa: N802
        self._send_error_json(405, "method_not_allowed",
                              "PUT is not supported")

    # ------------------------------------------------------------------ #
    def _stream_events(self, job_id: str, query: Dict[str, list]) -> None:
        """NDJSON event stream; blocks until the job is terminal."""
        start = 0
        if "from" in query:
            try:
                start = int(query["from"][0])
            except (ValueError, IndexError) as exc:
                raise RequestError("'from' must be an integer") from exc
            if start < 0:
                raise RequestError("'from' must be >= 0")
        events = self.service.stream_events(job_id, start=start)
        self.send_response(200)
        self.send_header("Content-Type", "application/x-ndjson")
        self.send_header("Cache-Control", "no-store")
        # length is unknown up front; close the connection to delimit
        self.send_header("Connection", "close")
        self.end_headers()
        for event in events:
            self.wfile.write(
                (json.dumps(event, sort_keys=True) + "\n").encode("utf-8"))
            self.wfile.flush()
        self.close_connection = True


def create_server(
    service: MappingService,
    host: str = "127.0.0.1",
    port: int = 8780,
    quiet: bool = True,
) -> ThreadingHTTPServer:
    """Bind a threaded HTTP server around ``service`` (not yet serving).

    The caller owns both lifecycles: ``server.serve_forever()`` /
    ``server.shutdown()`` for the HTTP side, ``service.shutdown()`` for
    the worker pool. Tests run ``serve_forever`` on a daemon thread.
    """
    server = ThreadingHTTPServer((host, port), ServiceHandler)
    server.daemon_threads = True
    server.service = service  # type: ignore[attr-defined]
    server.quiet = quiet  # type: ignore[attr-defined]
    return server
