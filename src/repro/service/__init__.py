"""Mapping-as-a-service: the persistent compile daemon and its parts.

The service layer promotes the pieces the experiments already had --
engines behind one :class:`repro.core.engine.Engine` protocol, a
process-pool batch runner, and a content-hash-keyed JSONL cache -- into a
long-lived serving surface:

* :mod:`repro.service.store` -- the sharded content-addressed result
  store (also the backing implementation of the batch runner's JSONL
  cache);
* :mod:`repro.service.jobs` -- request validation, the job model, and
  the priority worker pool with warm per-worker fabric state;
* :mod:`repro.service.server` -- the stdlib-only HTTP daemon
  (``repro-serve start``);
* :mod:`repro.service.client` -- the thin ``urllib`` client used by the
  tests and by ``repro-map map --remote``.

Everything is standard library on top of the existing mapping engines:
no web framework, no serialization dependency.
"""

from repro.service.store import ResultStore, content_key

__all__ = ["ResultStore", "content_key"]
