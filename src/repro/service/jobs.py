"""Request model, job lifecycle and the worker pool of the compile service.

A request reaches the service as a JSON payload (see
:meth:`MapRequest.from_payload` for the schema) naming its kernel by one
of three sources -- frontend ``kernel`` source text, a serialized ``dfg``,
or a bundled ``benchmark`` name -- plus the mapping knobs every other
entry point in the project exposes (fabric, approach, opt level, solver
backend, seed, budget).

Submitting a request first derives its **store key**
(:meth:`MapRequest.store_record` -> :func:`repro.service.store.content_key`):
if the content-addressed store already holds a result for that exact
configuration, the job is born ``done`` with ``cache == "hit"`` and the
stored result -- no engine runs, no queue wait. Otherwise the job enters a
priority queue consumed by a pool of worker threads; each worker keeps a
*warm fabric cache* (constructed :class:`~repro.arch.cgra.CGRA` objects
keyed by fabric content) so repeated requests against the same fabric
skip re-construction.

Progress is a list of JSON events per job (``submitted``, ``started``,
``improvement`` best-so-far records from the heuristic engine's anytime
callback, ``done``/``failed``/``cancelled``), observable live through
:meth:`MappingService.stream_events` -- the backing iterator of the HTTP
layer's ``GET /v1/jobs/<id>/events``. Improvement events are persisted
with the result, so a cache hit replays the same stream the original
computation produced.

**Fault tolerance.** By default (``execution="process"``) each job runs
in a crash-isolated worker *process* supervised by its worker thread
(:mod:`repro.service.procpool`): a worker that dies (signal, nonzero
exit, stalled heartbeat) is restarted and the job requeued with a
bounded retry budget and exponential backoff, the crash attributed in
the job's event stream (``worker_crashed``/``retrying``), counters and
the run log. A native-tier solver that crashes the worker repeatedly on
one job is demoted ``native -> numpy -> arena`` before giving up; if
worker processes cannot be started at all the service *degrades* to the
legacy in-thread path (``execution="thread"``) and says so in
``/healthz``. Draining (:meth:`MappingService.drain`) rejects new
submissions with :class:`ServiceUnavailable`, finishes in-flight work,
and checkpoints still-queued payloads to a journal next to the store
that :meth:`MappingService.recover_journal` resubmits on restart.
"""

from __future__ import annotations

import json
import os
import queue
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from repro.arch.cgra import CGRA
from repro.arch.spec import ArchSpec, preset_names, resolve_arch
from repro.core.engine import create_engine, normalize_engine
from repro.experiments.batch import ARENA_IDENTICAL_BACKENDS
from repro.experiments.runner import parse_size
from repro.graphs.dfg import DFG
from repro.obs import logjson, metrics, profiler
from repro.obs import trace as obs_trace
from repro.service import procpool
from repro.service.store import ResultStore, content_key

#: statuses a job can be in; terminal ones never change again
JOB_QUEUED = "queued"
JOB_RUNNING = "running"
JOB_DONE = "done"
JOB_FAILED = "failed"
JOB_CANCELLED = "cancelled"
JOB_JOURNALED = "journaled"  # checkpointed by a drain; resubmitted on restart
TERMINAL_STATUSES = (JOB_DONE, JOB_FAILED, JOB_CANCELLED, JOB_JOURNALED)

#: result statuses worth persisting: deterministic facts about the
#: configuration. Timeouts are *not* cached -- they describe the budget
#: and the machine load, not the kernel.
CACHEABLE_STATUSES = ("success", "no_solution", "infeasible")

#: solver backends a request may name (mirrors ``repro-map``'s choices)
SOLVER_BACKEND_CHOICES = ("arena", "native", "native-c", "numpy",
                          "reference")

#: supervised-retry policy: a crashed/stalled attempt is requeued at most
#: this many times (hard_timeout is never retried -- a second full budget
#: would be burned the same way), with exponentially growing backoff
DEFAULT_MAX_RETRIES = 2
RETRY_BACKOFF_BASE_SECONDS = 0.25
RETRY_BACKOFF_CAP_SECONDS = 5.0

#: graceful degradation: after this many crashes of one job on a native
#: solver tier, retry one tier down (native -> numpy -> arena); the
#: ladder only holds arena-identical tiers, so the store key is unchanged
DEMOTE_AFTER_CRASHES = 2
DEMOTION_LADDER = {"native": "numpy", "native-c": "numpy",
                   "numpy": "arena"}

#: slack on top of a job's budget before the supervisor declares the
#: engine's own budget enforcement failed and puts the worker down
DEFAULT_HARD_DEADLINE_GRACE_SECONDS = 30.0


class RequestError(ValueError):
    """A malformed or unserviceable request payload (HTTP 400)."""


class ServiceUnavailable(RuntimeError):
    """The service is draining and not accepting new jobs (HTTP 503)."""

    def __init__(self, message: str, retry_after: int = 5) -> None:
        super().__init__(message)
        self.retry_after = retry_after


class _JobCancelled(Exception):
    """Raised inside the engine callback to abort a cancelled job."""


@dataclass
class MapRequest:
    """A validated mapping request, ready for a worker.

    ``fabric_record`` / ``dfg`` are canonical content (not spellings):
    two payloads that describe the same kernel and fabric produce equal
    :meth:`store_record` dicts and therefore the same store key.
    """

    dfg: DFG
    source_kind: str                      # "kernel" | "dfg" | "benchmark"
    cgra_size: str
    arch: Optional[str]                   # preset name, or None
    arch_spec: Optional[ArchSpec]         # inline spec, if one was sent
    approach: str                         # canonical engine name
    opt_level: int
    opt_passes: Optional[Tuple[str, ...]]
    solver_backend: Optional[str]         # None == default arena kernel
    seed: Optional[int]                   # resolved; exact engines: None
    budget_seconds: float
    priority: int
    strategy: str                         # heuristic II sweep direction

    @classmethod
    def from_payload(
        cls,
        payload: Dict[str, object],
        default_budget_seconds: float = 30.0,
        max_budget_seconds: float = 300.0,
    ) -> "MapRequest":
        """Validate a JSON payload into a request; raises RequestError.

        Payload schema (one source field is required, everything else is
        optional)::

            {"kernel": "<frontend source>",   # exactly one of these
             "dfg": {...},                    # DFG.to_dict() shape
             "benchmark": "crc32",
             "cgra": "4x4",
             "arch": "<preset name>",         # or:
             "arch_spec": {...},              # inline ArchSpec JSON
             "approach": "monomorphism",      # any engine alias
             "opt_level": "O2", "opt_passes": ["cse", ...],
             "solver_backend": "arena",
             "seed": 7,
             "budget_seconds": 30.0,
             "priority": 0,
             "strategy": "ascend"}            # or "refine" (streaming)
        """
        if not isinstance(payload, dict):
            raise RequestError("payload must be a JSON object")
        sources = [k for k in ("kernel", "dfg", "benchmark") if k in payload]
        if len(sources) != 1:
            raise RequestError(
                "exactly one of 'kernel', 'dfg' or 'benchmark' is required")
        source_kind = sources[0]
        try:
            if source_kind == "kernel":
                from repro.frontend import extract_dfg

                program = extract_dfg(str(payload["kernel"]),
                                      name="service_kernel")
                dfg = program.dfg
            elif source_kind == "dfg":
                if not isinstance(payload["dfg"], dict):
                    raise RequestError("'dfg' must be a JSON object")
                dfg = DFG.from_dict(payload["dfg"])
                dfg.validate()
            else:
                from repro.workloads.suite import load_benchmark

                dfg = load_benchmark(str(payload["benchmark"]))
        except RequestError:
            raise
        except KeyError as exc:
            raise RequestError(
                f"unknown benchmark {payload.get('benchmark')!r}") from exc
        except Exception as exc:  # lexer/parser/graph errors: bad payload
            raise RequestError(f"invalid {source_kind}: {exc}") from exc

        size = str(payload.get("cgra", "4x4"))
        try:
            parse_size(size)
        except ValueError as exc:
            raise RequestError(str(exc)) from exc

        arch = payload.get("arch")
        arch_spec: Optional[ArchSpec] = None
        if arch is not None and "arch_spec" in payload:
            raise RequestError("'arch' and 'arch_spec' are exclusive")
        if arch is not None:
            arch = str(arch)
            if arch not in preset_names():
                raise RequestError(
                    f"unknown arch preset {arch!r}; inline fabrics go in "
                    "'arch_spec'")
        if "arch_spec" in payload:
            try:
                arch_spec = ArchSpec.from_json(json.dumps(payload["arch_spec"]))
            except Exception as exc:
                raise RequestError(f"invalid arch_spec: {exc}") from exc

        try:
            approach = normalize_engine(str(payload.get("approach",
                                                        "monomorphism")))
        except ValueError as exc:
            raise RequestError(str(exc)) from exc

        from repro.opt.pipeline import parse_opt_level

        try:
            opt_level = parse_opt_level(payload.get("opt_level", 0))
        except ValueError as exc:
            raise RequestError(str(exc)) from exc
        opt_passes = payload.get("opt_passes")
        if opt_passes is not None:
            if (not isinstance(opt_passes, (list, tuple))
                    or not all(isinstance(p, str) for p in opt_passes)):
                raise RequestError("'opt_passes' must be a list of names")
            from repro.opt.passes import make_pass

            try:
                for name in opt_passes:
                    make_pass(name)
            except ValueError as exc:
                raise RequestError(str(exc)) from exc
            opt_passes = tuple(opt_passes)

        solver_backend = payload.get("solver_backend")
        if solver_backend is not None and \
                solver_backend not in SOLVER_BACKEND_CHOICES:
            raise RequestError(
                f"unknown solver_backend {solver_backend!r}; expected one "
                f"of {SOLVER_BACKEND_CHOICES}")
        if solver_backend == "arena" or approach == "heuristic":
            solver_backend = None  # one configuration, one key (cf. BatchCase)

        seed = payload.get("seed")
        if seed is not None and not isinstance(seed, int):
            raise RequestError("'seed' must be an integer")
        if approach in ("heuristic", "portfolio"):
            from repro.heuristic.engine import resolve_seed

            seed = resolve_seed(seed)
        else:
            seed = None  # exact engines are deterministic

        try:
            budget = float(payload.get("budget_seconds",
                                       default_budget_seconds))
        except (TypeError, ValueError) as exc:
            raise RequestError("'budget_seconds' must be a number") from exc
        if budget <= 0:
            raise RequestError("'budget_seconds' must be positive")
        budget = min(budget, max_budget_seconds)

        priority = payload.get("priority", 0)
        if not isinstance(priority, int):
            raise RequestError("'priority' must be an integer")

        strategy = str(payload.get("strategy", "ascend"))
        if strategy not in ("ascend", "refine"):
            raise RequestError(
                f"unknown strategy {strategy!r}; expected 'ascend' or "
                "'refine'")

        return cls(
            dfg=dfg, source_kind=source_kind, cgra_size=size,
            arch=arch, arch_spec=arch_spec, approach=approach,
            opt_level=opt_level, opt_passes=opt_passes,
            solver_backend=solver_backend, seed=seed,
            budget_seconds=budget, priority=priority, strategy=strategy,
        )

    # ------------------------------------------------------------------ #
    def resolved_spec(self) -> Optional[ArchSpec]:
        """The declarative fabric of this request (None = plain torus)."""
        if self.arch_spec is not None:
            return self.arch_spec
        if self.arch is not None:
            rows, cols = parse_size(self.cgra_size)
            return resolve_arch(self.arch, rows, cols)
        return None

    def fabric_record(self) -> Dict[str, object]:
        """Canonical fabric content for the store key and fabric cache."""
        spec = self.resolved_spec()
        if spec is None:
            return {"size": self.cgra_size, "topology": "torus"}
        return json.loads(spec.to_json())

    def build_cgra(self) -> CGRA:
        spec = self.resolved_spec()
        if spec is None:
            rows, cols = parse_size(self.cgra_size)
            return CGRA(rows, cols)
        return spec.build()

    def store_record(self) -> Dict[str, object]:
        """The configuration record whose content hash keys the store.

        Key derivation contract (see :mod:`repro.service.store`): the
        record holds canonical *content*, never spellings -- the DFG's
        serialized structure (so a kernel submitted as source and the
        same kernel submitted as a serialized DFG share a key), the
        resolved fabric, the canonical engine name, and exactly the
        knobs that can change the result (opt pipeline, SAT backend,
        resolved seed and budget for the stochastic engines, sweep
        strategy). Spellings, priorities and transport details stay out.
        """
        record: Dict[str, object] = {
            "dfg_sha": content_key(self.dfg.to_dict()),
            "fabric": self.fabric_record(),
            "approach": self.approach,
        }
        if self.opt_level:
            record["opt_level"] = self.opt_level
        if self.opt_passes:
            record["opt_passes"] = list(self.opt_passes)
        if self.solver_backend is not None and \
                self.solver_backend not in ARENA_IDENTICAL_BACKENDS:
            # the native tier family is bit-identical to arena (cf.
            # BatchCase.cache_key), so only result-changing backends --
            # today just "reference" -- fragment the key; this is also
            # what lets crash-driven demotion keep the job's store key
            record["solver_backend"] = self.solver_backend
        if self.seed is not None:
            record["seed"] = self.seed
        if self.approach in ("heuristic", "portfolio"):
            # budget and sweep direction shape the stochastic engines'
            # results; the exact engines' outcome is budget-independent
            # (timeouts are never cached)
            record["budget_seconds"] = self.budget_seconds
            record["strategy"] = self.strategy
        return record

    def describe(self) -> Dict[str, object]:
        """A JSON summary for job views and stored provenance."""
        return {
            "source": self.source_kind,
            "dfg_name": self.dfg.name,
            "nodes": self.dfg.num_nodes,
            "cgra": self.cgra_size,
            "arch": self.arch or ("inline" if self.arch_spec else None),
            "approach": self.approach,
            "opt_level": self.opt_level,
            "opt_passes": list(self.opt_passes) if self.opt_passes else None,
            "solver_backend": self.solver_backend,
            "seed": self.seed,
            "budget_seconds": self.budget_seconds,
            "priority": self.priority,
            "strategy": self.strategy,
        }


@dataclass
class Job:
    """One submitted request and everything that happened to it."""

    id: str
    request: MapRequest
    key: str
    #: distributed trace context: minted at submission (or adopted from
    #: the client's ``traceparent`` header) and *stable across retries*,
    #: so a crash-restart-retry sequence stays one trace
    trace_id: str = ""
    parent_span_id: int = 0
    status: str = JOB_QUEUED
    cache: str = "miss"
    created: float = field(default_factory=time.time)
    started: Optional[float] = None
    finished: Optional[float] = None
    result: Optional[Dict[str, object]] = None
    error: Optional[str] = None
    events: List[Dict[str, object]] = field(default_factory=list)
    cancel_requested: bool = False
    #: the raw submitted payload, kept for the drain journal and so a
    #: retried attempt re-validates exactly what the client sent
    payload: Optional[Dict[str, object]] = None
    #: supervised execution bookkeeping (process mode)
    attempts: int = 0
    crashes: int = 0
    effective_backend: Optional[str] = None  # after any demotion
    cond: threading.Condition = field(default_factory=threading.Condition,
                                      repr=False)

    @property
    def terminal(self) -> bool:
        return self.status in TERMINAL_STATUSES

    def view(self, include_result: bool = True) -> Dict[str, object]:
        view: Dict[str, object] = {
            "id": self.id,
            "key": self.key,
            "trace_id": self.trace_id,
            "status": self.status,
            "cache": self.cache,
            "request": self.request.describe(),
            "created": self.created,
            "started": self.started,
            "finished": self.finished,
            "num_events": len(self.events),
            "attempts": self.attempts,
        }
        if self.crashes or self.attempts > 1:
            view["crashes"] = self.crashes
        if self.effective_backend != self.request.solver_backend:
            view["effective_backend"] = self.effective_backend or "arena"
        if self.error is not None:
            view["error"] = self.error
        if include_result and self.result is not None:
            view["result"] = self.result
        return view


def result_record(result, engine_seconds: float,
                  events: List[Dict[str, object]]) -> Dict[str, object]:
    """Flatten a :class:`~repro.core.mapper.MappingResult` to JSON.

    ``engine_seconds`` is the wall clock the worker spent inside
    ``engine.map()`` -- on a cache hit it is reported as stored, so a
    client can always see what the computation originally cost, while the
    job's own ``started``/``finished`` stamps show the (near-zero) serve
    time.
    """
    mapping = result.mapping
    return {
        "status": result.status.value,
        "ii": result.ii,
        "mii": result.mii,
        "res_ii": result.res_ii,
        "rec_ii": result.rec_ii,
        "time_phase_seconds": result.time_phase_seconds,
        "space_phase_seconds": result.space_phase_seconds,
        "total_seconds": result.total_seconds,
        "opt_seconds": result.opt_seconds,
        "schedules_tried": result.schedules_tried,
        "iis_tried": result.iis_tried,
        "message": result.message,
        "stats": result.stats,
        "mapping": mapping.to_dict() if mapping is not None else None,
        "engine_seconds": engine_seconds,
        "events": [dict(event) for event in events
                   if event.get("event") == "improvement"],
    }


class MappingService:
    """The compile service: store-first answers, then the worker pool.

    Thread-safe; the HTTP layer calls it from handler threads and the
    worker pool mutates jobs from worker threads. When ``store_path`` is
    ``None`` results are still content-addressed, but only in memory for
    the lifetime of the service.
    """

    def __init__(
        self,
        store_path: Optional[str] = None,
        workers: int = 2,
        default_budget_seconds: float = 30.0,
        max_budget_seconds: float = 300.0,
        trace_dir: Optional[str] = None,
        execution: str = "process",
        max_retries: int = DEFAULT_MAX_RETRIES,
        heartbeat_timeout_seconds: float =
            procpool.DEFAULT_HEARTBEAT_TIMEOUT_SECONDS,
        hard_deadline_grace_seconds: float =
            DEFAULT_HARD_DEADLINE_GRACE_SECONDS,
        profile_interval_seconds: float =
            profiler.DEFAULT_INTERVAL_SECONDS,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if execution not in ("process", "thread"):
            raise ValueError(
                f"unknown execution mode {execution!r}; expected "
                "'process' or 'thread'")
        self.store = (ResultStore(store_path, header={"writer": "repro-serve"})
                      if store_path else None)
        self._memory_cache: Dict[str, Dict[str, object]] = {}
        self.default_budget_seconds = default_budget_seconds
        self.max_budget_seconds = max_budget_seconds
        self.execution = execution
        self.max_retries = max(int(max_retries), 0)
        self.heartbeat_timeout_seconds = heartbeat_timeout_seconds
        self.hard_deadline_grace_seconds = hard_deadline_grace_seconds
        #: sampling period for the workers' continuous profiler
        #: (0 disables sampling entirely)
        self.profile_interval_seconds = max(profile_interval_seconds, 0.0)
        self._degraded = False
        self._draining = threading.Event()
        # per-job tracing: enabling the tracer here makes every worker's
        # spans recordable; each job's slice is exported (and removed from
        # the buffer) as <trace_dir>/<job_id>.json when the job finishes
        self.trace_dir = trace_dir
        if trace_dir is not None:
            os.makedirs(trace_dir, exist_ok=True)
            obs_trace.enable()
        self.started_at = time.time()
        # event timestamps are anchored once to the wall clock and then
        # advanced by the monotonic clock, so streamed `ts` fields are
        # ordered even across NTP steps (see _now)
        self._mono_start = time.monotonic()
        self.jobs: Dict[str, Job] = {}
        self.counters = {
            "submitted": 0,
            "engine_runs": 0,
            "cache_hits": 0,
            "failed": 0,
            "cancelled": 0,
            "fabric_cache_hits": 0,
            "worker_crashes": 0,
            "worker_restarts": 0,
            "retries": 0,
            "demotions": 0,
            "journaled": 0,
            "recovered": 0,
        }
        self._lock = threading.Lock()
        self._queue: "queue.PriorityQueue" = queue.PriorityQueue()
        self._seq = 0
        self._stop = threading.Event()
        self._workers = [
            threading.Thread(target=self._worker_loop, args=(index,),
                             name=f"repro-serve-worker-{index}", daemon=True)
            for index in range(workers)
        ]
        for thread in self._workers:
            thread.start()

    # ------------------------------------------------------------------ #
    # Submission / lookup
    # ------------------------------------------------------------------ #
    def _now(self) -> float:
        """Monotonic-anchored wall-clock time for event ``ts`` stamps.

        The wall clock is read once at service start; afterwards time
        advances by ``time.monotonic()`` deltas, so streamed event
        timestamps are strictly ordered even if the system clock steps.
        """
        return self.started_at + (time.monotonic() - self._mono_start)

    def _store_get(self, key: str) -> Optional[Dict[str, object]]:
        found = None
        with self._lock:
            if key in self._memory_cache:
                found = self._memory_cache[key]
            elif self.store is not None:
                record = self.store.get(key)
                if record is not None:
                    result = record.get("result")
                    found = result if isinstance(result, dict) else None
        if found is not None:
            metrics.inc("repro_store_hits_total")
        else:
            metrics.inc("repro_store_misses_total")
        return found

    def _store_put(self, key: str, request: MapRequest,
                   result: Dict[str, object]) -> None:
        with self._lock:
            self._memory_cache[key] = result
            if self.store is not None:
                self.store.put(key, {
                    "request": {**request.describe(),
                                "record": request.store_record()},
                    "result": result,
                })

    def _append_event(self, job: Job, payload: Dict[str, object]) -> None:
        # every streamed NDJSON event carries the job's trace id; replayed
        # cache-hit events are re-stamped with the *new* job's context
        with job.cond:
            job.events.append(dict(payload, ts=round(self._now(), 3),
                                   trace_id=job.trace_id))
            job.cond.notify_all()

    def _finish(self, job: Job, status: str,
                result: Optional[Dict[str, object]] = None,
                error: Optional[str] = None) -> None:
        final_event = {"event": status}
        if result is not None:
            final_event["ii"] = result.get("ii")
            final_event["status"] = result.get("status")
        if error is not None:
            final_event["error"] = error
        with job.cond:
            job.status = status
            job.result = result
            job.error = error
            job.finished = self._now()
            job.events.append(dict(final_event, ts=round(job.finished, 3),
                                   trace_id=job.trace_id))
            job.cond.notify_all()
        metrics.inc("repro_service_jobs_total",
                    status="hit" if job.cache == "hit" else status)
        logjson.log(
            "job",
            job=job.id,
            key=job.key,
            status=status,
            cache=job.cache,
            approach=job.request.approach,
            error=error,
            ii=result.get("ii") if result else None,
            trace=job.id if self.trace_dir is not None else None,
            trace_id=job.trace_id or None,
        )

    def submit(self, payload: Dict[str, object],
               traceparent: Optional[str] = None) -> Job:
        """Validate, answer from the store if possible, else enqueue.

        ``traceparent`` is the client's W3C-style trace context header,
        if one arrived: its trace id is adopted for the job (a malformed
        or absent header mints a fresh one), so client-side spans and
        everything the service records share one ``trace_id``.

        Raises :class:`ServiceUnavailable` while the service drains --
        the HTTP layer answers 503 with a ``Retry-After`` so well-behaved
        clients come back after the restart.
        """
        if self._draining.is_set():
            raise ServiceUnavailable(
                "service is draining; not accepting new jobs")
        handler_started = time.monotonic()
        context = obs_trace.parse_traceparent(traceparent)
        trace_id, parent_span = context if context else \
            (obs_trace.new_trace_id(), 0)
        request = MapRequest.from_payload(
            payload,
            default_budget_seconds=self.default_budget_seconds,
            max_budget_seconds=self.max_budget_seconds,
        )
        key = content_key(request.store_record())
        with self._lock:
            self._seq += 1
            job = Job(id=f"j{self._seq:06d}", request=request, key=key,
                      trace_id=trace_id, parent_span_id=parent_span,
                      payload=dict(payload),
                      effective_backend=request.solver_backend)
            self.jobs[job.id] = job
            self.counters["submitted"] += 1
        if self.trace_dir is not None:
            # the validation/submission slice of the HTTP handler, tagged
            # with the job id so the per-job export captures it (the span
            # is synthesized *before* the job can finish, so the export
            # never races it)
            obs_trace.push_trace(job.id, job.trace_id)
            obs_trace.add_complete(
                "http.handler", handler_started,
                time.monotonic() - handler_started,
                parent=0, route="POST /v1/jobs", job=job.id,
                **({"remote_parent": "%016x" % parent_span}
                   if parent_span else {}),
            )
            obs_trace.pop_trace()
        logjson.log(
            "request",
            job=job.id,
            key=key,
            trace_id=job.trace_id,
            approach=request.approach,
            source=request.source_kind,
            cgra=request.cgra_size,
            priority=request.priority,
        )
        self._append_event(job, {"event": "submitted", "key": key})

        stored = self._store_get(key)
        if stored is not None:
            with self._lock:
                self.counters["cache_hits"] += 1
            job.cache = "hit"
            job.started = self._now()
            self._append_event(job, {"event": "cache_hit"})
            # replay the improvement stream the original computation
            # produced, so streaming clients see the same shape
            for event in stored.get("events", ()):
                self._append_event(job, event)
            self._finish(job, JOB_DONE, result=dict(stored, cached=True))
            return job

        self._queue.put((-request.priority, self._seq, job.id))
        metrics.set_gauge("repro_service_queue_depth", self._queue.qsize())
        return job

    def get(self, job_id: str) -> Job:
        try:
            return self.jobs[job_id]
        except KeyError as exc:
            raise KeyError(f"unknown job {job_id!r}") from exc

    def cancel(self, job_id: str) -> Job:
        """Request cancellation; queued jobs die before starting, running
        heuristic jobs abort at their next improvement callback."""
        job = self.get(job_id)
        with job.cond:
            job.cancel_requested = True
        if job.status == JOB_QUEUED:
            # the worker loop observes the flag when it pops the job;
            # nothing else to do -- the job is not running anywhere
            pass
        return job

    # ------------------------------------------------------------------ #
    # Worker pool
    # ------------------------------------------------------------------ #
    def _worker_loop(self, index: int) -> None:
        # warm per-worker state: fabrics are keyed by canonical content,
        # so repeated requests against the same fabric skip CGRA/MRRG
        # reconstruction entirely (results are unaffected -- see the
        # Engine protocol's warm-state rule). In process mode the worker
        # thread owns one persistent child process (whose own fabric
        # cache plays the same role) and supervises it across jobs.
        fabric_cache: Dict[str, CGRA] = {}
        worker: Optional[procpool.ProcessWorker] = None
        while not self._stop.is_set():
            if self._draining.is_set():
                # draining: leave queued jobs for the journal
                time.sleep(0.05)
                continue
            try:
                _, _, job_id = self._queue.get(timeout=0.1)
            except queue.Empty:
                continue
            job = self.jobs[job_id]
            metrics.set_gauge("repro_service_queue_depth",
                              self._queue.qsize())
            if job.cancel_requested:
                with self._lock:
                    self.counters["cancelled"] += 1
                self._finish(job, JOB_CANCELLED)
                continue
            if job.terminal:
                continue  # journaled by a drain while still queued
            if self.execution == "process" and not self._degraded:
                if worker is None:
                    worker = procpool.ProcessWorker(
                        index,
                        heartbeat_timeout=self.heartbeat_timeout_seconds,
                        profile_interval=self.profile_interval_seconds)
                self._run_job(job, index, fabric_cache, worker=worker)
            else:
                self._run_job(job, index, fabric_cache)
        if worker is not None:
            worker.stop()

    def _export_trace(self, job: Job) -> None:
        """Write the job's merged span slice as Chrome trace JSON."""
        snap = obs_trace.snapshot(trace=job.id, clear=True)
        if not snap["events"]:
            return
        path = os.path.join(self.trace_dir, f"{job.id}.json")
        try:
            count = obs_trace.write_chrome_trace(path, snap=snap)
        except OSError as exc:
            logjson.log("trace_warning", job=job.id, error=repr(exc))
            return
        logjson.log("trace_export", job=job.id, path=path, spans=count)

    def _run_job(self, job: Job, worker_index: int,
                 fabric_cache: Dict[str, CGRA],
                 worker: Optional[procpool.ProcessWorker] = None) -> None:
        tracing = self.trace_dir is not None
        # the label/trace-id frame is pushed even when span recording is
        # off: run-log records written anywhere under this job (engine
        # hooks, store warnings -- including the in-thread degraded
        # path, whose records used to lack any job correlation) pick up
        # the job id and trace id from the thread's context
        obs_trace.push_trace(job.id, job.trace_id)
        try:
            with obs_trace.span("worker.run", job=job.id,
                                worker=worker_index) as run_span:
                if worker is not None:
                    self._run_job_process(
                        job, worker_index, worker, fabric_cache,
                        parent_span_id=getattr(run_span, "span_id", 0))
                else:
                    self._run_job_impl(job, worker_index, fabric_cache)
        finally:
            obs_trace.pop_trace()
            if tracing:
                self._export_trace(job)

    # ------------------------------------------------------------------ #
    # Process execution: supervision, retries, demotion, degradation
    # ------------------------------------------------------------------ #
    def _enter_degraded(self, reason: str) -> None:
        """Mark the process pool unhealthy; jobs fall back in-thread."""
        if self._degraded:
            return
        self._degraded = True
        metrics.set_gauge("repro_service_degraded", 1)
        logjson.log("service_degraded", reason=reason)

    def _handle_crash(self, job: Job, crash: "procpool.WorkerCrash",
                      attempt: int) -> bool:
        """Account a worker death; True if the job should be retried."""
        metrics.inc("repro_worker_crashes_total", reason=crash.reason)
        with self._lock:
            self.counters["worker_crashes"] += 1
        job.crashes += 1
        self._append_event(job, {
            "event": "worker_crashed",
            "reason": crash.reason,
            "attempt": attempt,
            "exit": crash.describe(),
            "detail": crash.detail,
        })
        logjson.log("worker_crash", job=job.id, trace_id=job.trace_id or None,
                    reason=crash.reason, attempt=attempt,
                    exit=crash.describe(), detail=crash.detail)
        if crash.reason == "hard_timeout":
            # the engine's own budget enforcement failed; a retry would
            # burn another full budget the same way
            with self._lock:
                self.counters["failed"] += 1
            self._finish(job, JOB_FAILED,
                         error=f"worker exceeded hard deadline: "
                               f"{crash.detail}")
            return False
        backend = job.effective_backend
        if backend in DEMOTION_LADDER and job.crashes >= DEMOTE_AFTER_CRASHES:
            demoted = DEMOTION_LADDER[backend]
            job.effective_backend = None if demoted == "arena" else demoted
            job.crashes = 0  # the new tier gets a fresh crash budget
            metrics.inc("repro_backend_demotions_total")
            with self._lock:
                self.counters["demotions"] += 1
            self._append_event(job, {"event": "backend_demoted",
                                     "from": backend, "to": demoted})
            logjson.log("backend_demoted", job=job.id,
                        from_backend=backend, to_backend=demoted)
        if job.attempts > self.max_retries:
            with self._lock:
                self.counters["failed"] += 1
            self._finish(job, JOB_FAILED,
                         error=f"worker crashed ({crash.reason}) on all "
                               f"{job.attempts} attempt(s)")
            return False
        with self._lock:
            self.counters["retries"] += 1
        metrics.inc("repro_job_retries_total", reason=crash.reason)
        backoff = min(RETRY_BACKOFF_BASE_SECONDS * (2 ** (job.attempts - 1)),
                      RETRY_BACKOFF_CAP_SECONDS)
        self._append_event(job, {"event": "retrying",
                                 "attempt": job.attempts,
                                 "backoff_seconds": round(backoff, 3)})
        if self._stop.wait(timeout=backoff):
            with self._lock:
                self.counters["failed"] += 1
            self._finish(job, JOB_FAILED,
                         error="service stopped during retry backoff")
            return False
        return True

    def _run_job_process(self, job: Job, worker_index: int,
                         worker: "procpool.ProcessWorker",
                         fabric_cache: Dict[str, CGRA],
                         parent_span_id: int = 0) -> None:
        """Run ``job`` in the supervised worker process, with retries."""
        request = job.request
        with job.cond:
            job.status = JOB_RUNNING
            job.started = self._now()
        wait = max(job.started - job.created, 0.0)
        obs_trace.add_complete("queue.wait", time.monotonic() - wait, wait,
                               parent=0, job=job.id)
        traced = self.trace_dir is not None

        def on_event(payload: Dict[str, object]) -> None:
            if payload.get("event") == "started" \
                    and payload.get("warm_fabric"):
                with self._lock:
                    self.counters["fabric_cache_hits"] += 1
                metrics.inc("repro_service_fabric_cache_hits_total")
            self._append_event(job, payload)

        while True:
            try:
                state = worker.ensure()
            except procpool.WorkerStartError as exc:
                # the pool itself is unhealthy: degrade to the in-thread
                # path for this and every following job
                self._enter_degraded(repr(exc))
                self._append_event(job, {"event": "degraded",
                                         "fallback": "thread"})
                self._run_job_impl(job, worker_index, fabric_cache)
                return
            if state == "restarted":
                metrics.inc("repro_worker_restarts_total")
                with self._lock:
                    self.counters["worker_restarts"] += 1
            attempt = job.attempts
            job.attempts += 1
            spec = {
                "job": job.id,
                "worker": worker_index,
                "attempt": attempt,
                "payload": job.payload,
                "default_budget_seconds": self.default_budget_seconds,
                "max_budget_seconds": self.max_budget_seconds,
                "solver_backend": job.effective_backend,
                "seed": request.seed,
                "budget_seconds": request.budget_seconds,
                "traced": traced,
                # the same trace id rides every attempt, so a retry after
                # a crash re-parents under the job's one trace
                "trace_id": job.trace_id,
            }
            try:
                record, snap, child_logs, child_metrics = worker.run(
                    spec,
                    on_event=on_event,
                    deadline_seconds=(request.budget_seconds
                                      + self.hard_deadline_grace_seconds),
                    cancelled=lambda: job.cancel_requested,
                )
            except procpool.WorkerCancelled:
                with self._lock:
                    self.counters["cancelled"] += 1
                self._finish(job, JOB_CANCELLED)
                return
            except procpool.WorkerJobError as exc:
                # the engine raised on a healthy worker: a deterministic
                # job failure, not a fault -- no retry
                with self._lock:
                    self.counters["failed"] += 1
                self._finish(job, JOB_FAILED, error=str(exc))
                return
            except procpool.WorkerCrash as crash:
                if not self._handle_crash(job, crash, attempt):
                    return
                continue
            # fold the child's per-job registry delta in, so /metrics
            # carries the engine-side series (latency histograms, run
            # counters) that execute inside the worker process
            metrics.merge_dump(child_metrics)
            if traced:
                obs_trace.ingest(snap, parent_span_id=parent_span_id,
                                 trace=job.id, trace_id=job.trace_id)
            # the child never writes the run log (it would share the
            # parent's file offset); its captured records -- engine_run
            # above all -- land here, re-stamped with the job's ids
            for child_record in child_logs:
                if isinstance(child_record, dict):
                    logjson.emit(dict(child_record, job=job.id,
                                      trace=job.id,
                                      trace_id=job.trace_id or None))
            with self._lock:
                self.counters["engine_runs"] += 1
            # only the surviving attempt's improvements belong to the
            # result (a crashed attempt may have streamed a few first)
            starts = [i for i, e in enumerate(job.events)
                      if e.get("event") == "started"]
            tail = job.events[starts[-1]:] if starts else job.events
            record = dict(record, events=[
                dict(e) for e in tail if e.get("event") == "improvement"])
            if record["status"] in CACHEABLE_STATUSES:
                self._store_put(job.key, request, record)
            self._finish(job, JOB_DONE, result=record)
            return

    def _run_job_impl(self, job: Job, worker_index: int,
                      fabric_cache: Dict[str, CGRA]) -> None:
        request = job.request
        job.attempts += 1
        with job.cond:
            job.status = JOB_RUNNING
            job.started = self._now()
        # the time between submission and pickup, as a sibling span that
        # ends exactly where worker.run begins
        wait = max(job.started - job.created, 0.0)
        obs_trace.add_complete("queue.wait", time.monotonic() - wait, wait,
                               parent=0, job=job.id)
        fabric_key = content_key(request.fabric_record())
        cgra = fabric_cache.get(fabric_key)
        warm = cgra is not None
        if not warm:
            try:
                cgra = request.build_cgra()
            except Exception as exc:
                with self._lock:
                    self.counters["failed"] += 1
                self._finish(job, JOB_FAILED, error=f"fabric build: {exc!r}")
                return
            fabric_cache[fabric_key] = cgra
        else:
            with self._lock:
                self.counters["fabric_cache_hits"] += 1
            metrics.inc("repro_service_fabric_cache_hits_total")
        self._append_event(job, {"event": "started", "worker": worker_index,
                                 "warm_fabric": warm})

        def on_event(payload: Dict[str, object]) -> None:
            if job.cancel_requested:
                raise _JobCancelled()
            self._append_event(job, payload)

        engine = create_engine(
            request.approach,
            cgra,
            timeout_seconds=request.budget_seconds,
            budget_seconds=request.budget_seconds,
            seed=request.seed,
            opt_level=request.opt_level,
            opt_passes=request.opt_passes,
            solver_backend=request.solver_backend or "arena",
            strategy=request.strategy,
            on_event=on_event,
            # tracing wants the detailed per-phase solver clocks: they
            # become the synthesized solver-tier child spans
            profile=self.trace_dir is not None,
        )
        engine_start = time.monotonic()
        try:
            result = engine.map(request.dfg)
        except _JobCancelled:
            with self._lock:
                self.counters["cancelled"] += 1
            self._finish(job, JOB_CANCELLED)
            return
        except Exception as exc:
            with self._lock:
                self.counters["failed"] += 1
            self._finish(job, JOB_FAILED, error=repr(exc))
            return
        engine_seconds = time.monotonic() - engine_start
        with self._lock:
            self.counters["engine_runs"] += 1

        improvements = [e for e in job.events
                        if e.get("event") == "improvement"]
        record = result_record(result, engine_seconds, improvements)
        if record["status"] in CACHEABLE_STATUSES:
            self._store_put(job.key, request, record)
        self._finish(job, JOB_DONE, result=record)

    # ------------------------------------------------------------------ #
    # Observation
    # ------------------------------------------------------------------ #
    def stream_events(self, job_id: str, start: int = 0,
                      poll_seconds: float = 0.5) -> Iterator[Dict[str, object]]:
        """Yield a job's events from ``start``, blocking until terminal.

        The iterator ends once the job has reached a terminal status and
        every event has been delivered -- the last yielded event is
        always the terminal ``done``/``failed``/``cancelled`` record.
        """
        job = self.get(job_id)
        index = start
        while True:
            with job.cond:
                while index >= len(job.events) and not job.terminal:
                    job.cond.wait(timeout=poll_seconds)
                batch = list(job.events[index:])
                terminal = job.terminal
            yield from batch
            index += len(batch)
            if terminal and index >= len(job.events):
                return

    def health(self) -> Dict[str, object]:
        with self._lock:
            counters = dict(self.counters)
            by_status: Dict[str, int] = {}
            for job in self.jobs.values():
                by_status[job.status] = by_status.get(job.status, 0) + 1
        status = "ok"
        if self._degraded:
            status = "degraded"
        elif self._draining.is_set():
            status = "draining"
        return {
            "status": status,
            "uptime_seconds": round(time.time() - self.started_at, 3),
            "workers": len(self._workers),
            "execution": self.execution,
            "degraded": self._degraded,
            "draining": self._draining.is_set(),
            "queued": self._queue.qsize(),
            "jobs": by_status,
            "counters": counters,
            "observability": {
                "trace_dropped_spans": obs_trace.dropped(),
                "profile_sampling": profiler.running()
                or self.profile_interval_seconds > 0,
                "profile_stacks": len(profiler.cumulative()),
            },
            "store": self.store.stats() if self.store is not None else None,
        }

    # ------------------------------------------------------------------ #
    # Drain / journal / recover
    # ------------------------------------------------------------------ #
    def journal_path(self) -> Optional[str]:
        """Where drained-but-queued payloads are checkpointed.

        Next to the store: ``<root>/journal.jsonl`` for the sharded
        layout (the loader only reads ``shards/*.jsonl``, so the journal
        never pollutes the index), ``<path>.journal`` for the flat one.
        ``None`` without a store -- there is nowhere durable to put it.
        """
        if self.store is None:
            return None
        if self.store._sharded:
            return os.path.join(self.store.path, "journal.jsonl")
        return self.store.path + ".journal"

    def begin_drain(self) -> None:
        """Stop accepting submissions and stop dispatching queued jobs."""
        if not self._draining.is_set():
            logjson.log("drain_begin")
        self._draining.set()

    def drain(self, timeout: float = 30.0) -> Dict[str, object]:
        """Drain for shutdown: finish in-flight work, journal the queue.

        Blocks up to ``timeout`` seconds for running jobs to finish (the
        HTTP layer keeps answering, rejecting submissions with 503), then
        checkpoints every still-queued job to :meth:`journal_path` and
        marks it ``journaled``. Returns a summary; ``running`` lists
        jobs that outlived the timeout and will die with the process.
        """
        self.begin_drain()
        # a worker that popped a job in the instant before the flag went
        # up is about to mark it running; give it a beat so the job is
        # either in-flight (waited for) or still queued (journaled)
        time.sleep(0.25)
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            with self._lock:
                busy = any(job.status == JOB_RUNNING
                           for job in self.jobs.values())
            if not busy:
                break
            time.sleep(0.05)
        journaled = self._journal_queued()
        with self._lock:
            running = [job.id for job in self.jobs.values()
                       if job.status == JOB_RUNNING]
        summary = {"journaled": journaled, "running": running}
        logjson.log("drain_done", **summary)
        return summary

    def _journal_queued(self) -> int:
        """Checkpoint every still-queued job; returns how many."""
        drained: List[Job] = []
        while True:
            try:
                _, _, job_id = self._queue.get_nowait()
            except queue.Empty:
                break
            job = self.jobs[job_id]
            if job.status == JOB_QUEUED and not job.terminal:
                drained.append(job)
        metrics.set_gauge("repro_service_queue_depth", 0)
        path = self.journal_path()
        if path is None:
            # no store, no journal: queued work cannot survive; cancel
            # it honestly rather than silently dropping it
            for job in drained:
                with self._lock:
                    self.counters["cancelled"] += 1
                self._finish(job, JOB_CANCELLED)
            return 0
        if not drained:
            return 0
        entries: List[Dict[str, object]] = []
        if os.path.exists(path):
            # merge a previous drain's journal instead of overwriting it
            with open(path, "r", encoding="utf-8") as handle:
                for line in handle:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        entries.append(json.loads(line))
                    except ValueError:
                        continue
        for job in drained:
            entries.append({
                "id": job.id,
                "payload": job.payload,
                "priority": job.request.priority,
                "journaled_at": round(self._now(), 3),
            })
        tmp = path + ".tmp"
        with open(tmp, "w", encoding="utf-8") as handle:
            for entry in entries:
                handle.write(json.dumps(entry, sort_keys=True) + "\n")
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
        for job in drained:
            with self._lock:
                self.counters["journaled"] += 1
            metrics.inc("repro_journal_jobs_total", op="journaled")
            self._finish(job, JOB_JOURNALED)
        return len(drained)

    def recover_journal(self) -> int:
        """Resubmit a previous drain's journaled payloads; returns count.

        Called once at startup (``repro-serve start``). The journal file
        is removed only after every entry has been resubmitted, so a
        crash mid-recovery re-runs entries rather than losing them (the
        content-addressed store absorbs the duplicates).
        """
        path = self.journal_path()
        if path is None or not os.path.exists(path):
            return 0
        entries: List[Dict[str, object]] = []
        with open(path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    entries.append(json.loads(line))
                except ValueError:
                    continue
        recovered = 0
        for entry in entries:
            payload = entry.get("payload")
            if not isinstance(payload, dict):
                continue
            try:
                self.submit(payload)
            except (RequestError, ServiceUnavailable) as exc:
                logjson.log("journal_skip", entry=entry.get("id"),
                            error=repr(exc))
                continue
            recovered += 1
            metrics.inc("repro_journal_jobs_total", op="recovered")
        with self._lock:
            self.counters["recovered"] += recovered
        os.remove(path)
        logjson.log("journal_recovered", path=path, jobs=recovered)
        return recovered

    def shutdown(self, timeout: float = 5.0) -> None:
        self._stop.set()
        for thread in self._workers:
            thread.join(timeout=timeout)
