"""Crash-isolated worker processes for the compile service.

One :class:`ProcessWorker` is a *persistent* child process plus the
parent-side handle that supervises it.  The child runs a job loop --
receive a job spec, rebuild the request, run the engine, stream events
back, ship the result -- so repeated jobs keep the child's warm fabric
cache and (for the native backend) its compiled solver state, while a
segfaulting cffi call, an ``os._exit`` or a SIGKILL takes down *only*
that child.  The parent detects death three ways and attributes it:

* ``crashed`` -- the process exited (nonzero exit code or a signal)
  while a job was in flight; the pipe reports EOF or the process stops
  being alive with nothing buffered.
* ``stalled`` -- the child's heartbeat thread (which beats only while a
  job is executing) went silent past the heartbeat timeout: the worker
  is wedged in a C-level loop that ignores everything short of SIGKILL.
* ``hard_timeout`` -- the job overran its budget plus grace; the
  engine's own budget enforcement failed and the supervisor is the
  backstop.

In every death case the parent escalates through
:func:`repro.core.workers.reap` (terminate -> kill -> join, pipe closed)
so nothing leaks, and the *next* :meth:`ProcessWorker.ensure` call
restarts a fresh child.  The retry/requeue policy on top of this --
bounded retries, exponential backoff, solver-backend demotion,
degradation to in-thread execution -- lives in
:class:`repro.service.jobs.MappingService`; this module only knows how
to run one job in one child and say exactly how it died.

Wire protocol (pickled tuples over one duplex pipe):

* parent -> child: ``("job", spec)`` and ``("stop",)``;
* child -> parent: ``("hb",)`` heartbeats, ``("event", payload)``
  engine/lifecycle events, ``("prof", counts)`` sampling-profiler
  folded-stack deltas (shipped by the heartbeat thread while a job
  burns CPU), ``("done", record, trace_snapshot, log_records,
  metric_dump)`` and ``("failed", message)`` -- an engine *exception*
  is a failed job on a healthy worker, never a crash.

The job spec carries the job's distributed trace context
(``trace_id``); the child pushes it before running the engine so every
span it records and every captured run-log record joins the request's
trace when the parent ingests them.

The fault-injection hooks (:mod:`repro.service.faults`) fire only in the
child, which marks itself via :func:`faults.mark_worker_process`.
"""

from __future__ import annotations

import os
import threading
import time
from typing import Callable, Dict, Optional, Tuple

from repro.core.workers import describe_exit, reap
from repro.obs import logjson, metrics, profiler
from repro.obs import trace as obs_trace
from repro.service import faults

#: child heartbeat period while a job is executing
DEFAULT_HEARTBEAT_INTERVAL_SECONDS = 0.25

#: parent-side silence tolerance before a busy worker counts as stalled
DEFAULT_HEARTBEAT_TIMEOUT_SECONDS = 30.0

#: patience when stopping a worker gracefully
STOP_GRACE_SECONDS = 2.0

#: minimum spacing between a child's ("prof", ...) shipments
PROFILE_SHIP_INTERVAL_SECONDS = 1.0


class WorkerCrash(Exception):
    """The worker process died (or was put down) mid-job."""

    def __init__(self, reason: str, exitcode: Optional[int],
                 detail: str) -> None:
        super().__init__(f"{reason}: {detail} ({describe_exit(exitcode)})")
        self.reason = reason            # "crashed" | "stalled" | "hard_timeout"
        self.exitcode = exitcode
        self.detail = detail

    def describe(self) -> str:
        return describe_exit(self.exitcode)


class WorkerJobError(Exception):
    """The engine raised inside a healthy worker (no retry, no restart)."""


class WorkerCancelled(Exception):
    """The job was cancelled mid-run; the worker was killed to stop it."""


class WorkerStartError(Exception):
    """The worker process could not be started (pool unhealthy)."""


# --------------------------------------------------------------------- #
# Child side
# --------------------------------------------------------------------- #
def _child_send(connection, lock: threading.Lock, message: Tuple) -> bool:
    try:
        with lock:
            connection.send(message)
        return True
    except (BrokenPipeError, OSError):
        return False  # parent gone; the job loop will exit on recv EOF


def _child_main(connection, index: int, heartbeat_interval: float,
                profile_interval: float = 0.0) -> None:
    """Worker child entry point: the persistent job loop."""
    import signal

    # the daemon installs SIGTERM/SIGINT drain handlers; a forked worker
    # must not inherit them or reap()'s terminate() would be ignored
    for signum in (signal.SIGTERM, signal.SIGINT):
        try:
            signal.signal(signum, signal.SIG_DFL)
        except (OSError, ValueError):  # pragma: no cover - non-main thread
            pass
    faults.mark_worker_process()
    # continuous profiling: SIGPROF ticks only while this child burns
    # CPU, so an idle worker costs nothing; sample deltas ship back on
    # the heartbeat thread below
    if profile_interval > 0:
        profiler.start(profile_interval)
    send_lock = threading.Lock()
    working = threading.Event()
    done = threading.Event()

    prof_lock = threading.Lock()
    prof_last: Dict[str, int] = {}

    def ship_prof() -> None:
        # deltas only ship while a job is in flight: that is when the
        # parent is actively draining the pipe (between jobs nobody
        # recvs and messages would pile up in the pipe buffer)
        if not profiler.running():
            return
        with prof_lock:
            counts = profiler.local_counts()
            delta = profiler.window(prof_last, counts)
            if delta and _child_send(connection, send_lock,
                                     ("prof", delta)):
                prof_last.clear()
                prof_last.update(counts)

    def beat() -> None:
        last_ship = time.monotonic()
        while not done.is_set():
            if working.is_set() and not faults.stalled():
                if not _child_send(connection, send_lock, ("hb",)):
                    return
                now = time.monotonic()
                if now - last_ship >= PROFILE_SHIP_INTERVAL_SECONDS:
                    ship_prof()
                    last_ship = now
            time.sleep(heartbeat_interval)

    beater = threading.Thread(target=beat, name="procpool-heartbeat",
                              daemon=True)
    beater.start()

    fabric_cache: Dict[str, object] = {}
    try:
        while True:
            try:
                message = connection.recv()
            except (EOFError, OSError):
                break
            if not isinstance(message, tuple) or not message:
                continue
            if message[0] == "stop":
                break
            if message[0] != "job":
                continue
            spec = message[1]
            working.set()
            try:
                record, snapshot, log_records, metric_dump = _execute(
                    spec, fabric_cache,
                    lambda m: _child_send(connection, send_lock, m))
                ship_prof()  # the tail of this job's samples
                _child_send(connection, send_lock,
                            ("done", record, snapshot, log_records,
                             metric_dump))
            except BaseException as exc:  # noqa: BLE001 - report, parent decides
                logjson.capture_end()  # discard the aborted run's capture
                obs_trace.pop_trace()
                _child_send(connection, send_lock, ("failed", repr(exc)))
            finally:
                working.clear()
    finally:
        done.set()
        try:
            connection.close()
        except OSError:
            pass
    os._exit(0)


def _execute(spec: Dict[str, object], fabric_cache: Dict[str, object],
             send: Callable[[Tuple], bool]):
    """Run one job spec in this child.

    Returns ``(record, snapshot, log_records, metric_dump)`` -- the
    flattened result, the child's trace snapshot (or ``None``), the
    run-log records captured during the run (the child never writes the
    log file; the parent does, after re-stamping the job's ids), and
    the per-job metrics-registry delta for the parent to fold in.
    """
    # jobs.py imports this module; resolve the cycle at call time
    from repro.core.engine import create_engine
    from repro.service.jobs import MapRequest, result_record
    from repro.service.store import content_key

    attempt = int(spec.get("attempt", 0))
    plan = faults.plan()
    plan.maybe_kill("start", attempt)

    traced = bool(spec.get("traced"))
    if traced:
        # shed any fork-inherited buffer/stack state; this child's spans
        # ship back with the result and re-root under the parent's
        # worker.run span on ingest
        obs_trace.reset()
        obs_trace.enable()
    # the job's distributed trace context: every span and captured log
    # record this child produces joins the request's trace, across
    # retries (the parent sends the same trace_id on every attempt)
    obs_trace.push_trace(str(spec.get("job") or ""),
                         str(spec.get("trace_id") or ""))
    logjson.capture_begin()
    # per-job metric delta: cleared here, dumped with the result, folded
    # into the parent registry so /metrics carries engine-side series
    metrics.reset()

    request = MapRequest.from_payload(
        spec["payload"],
        default_budget_seconds=float(spec.get("default_budget_seconds", 30.0)),
        max_budget_seconds=float(spec.get("max_budget_seconds", 300.0)),
    )
    # supervision-time overrides: the effective backend may have been
    # demoted by the parent after earlier crashes, and the stochastic
    # seed was resolved once at submission (not per attempt)
    backend = spec.get("solver_backend", request.solver_backend)
    seed = spec.get("seed", request.seed)
    budget = float(spec.get("budget_seconds", request.budget_seconds))

    fabric_key = content_key(request.fabric_record())
    cgra = fabric_cache.get(fabric_key)
    warm = cgra is not None
    if not warm:
        cgra = request.build_cgra()
        fabric_cache[fabric_key] = cgra
    send(("event", {
        "event": "started",
        "worker": spec.get("worker"),
        "mode": "process",
        "pid": os.getpid(),
        "warm_fabric": warm,
        "attempt": attempt,
    }))

    slow = plan.slow_solver_seconds()
    if slow:
        time.sleep(slow)  # heartbeats keep flowing: slow is not stalled
    stall = plan.stall_seconds(attempt)
    if stall:
        faults.begin_stall()
        try:
            time.sleep(stall)
        finally:
            faults.end_stall()

    first_improvement = [True]

    def on_event(payload: Dict[str, object]) -> None:
        send(("event", payload))
        if payload.get("event") == "improvement" and first_improvement[0]:
            first_improvement[0] = False
            plan.maybe_kill("mid", attempt)

    plan.maybe_kill("engine", attempt)
    engine = create_engine(
        request.approach,
        cgra,
        timeout_seconds=budget,
        budget_seconds=budget,
        seed=seed,
        opt_level=request.opt_level,
        opt_passes=request.opt_passes,
        solver_backend=backend or "arena",
        strategy=request.strategy,
        on_event=on_event,
        profile=traced,
    )
    engine_start = time.monotonic()
    result = engine.map(request.dfg)
    engine_seconds = time.monotonic() - engine_start
    plan.maybe_kill("result", attempt)

    # improvement events already streamed live; the parent re-attaches
    # its timestamped copies to the record before storing it
    record = result_record(result, engine_seconds, [])
    snapshot = obs_trace.snapshot() if traced else None
    log_records = logjson.capture_end()
    obs_trace.pop_trace()  # the persistent child reuses this thread
    return record, snapshot, log_records, metrics.dump()


# --------------------------------------------------------------------- #
# Parent side
# --------------------------------------------------------------------- #
class ProcessWorker:
    """Parent-side handle: one supervised, restartable worker process."""

    def __init__(
        self,
        index: int,
        heartbeat_timeout: float = DEFAULT_HEARTBEAT_TIMEOUT_SECONDS,
        heartbeat_interval: float = DEFAULT_HEARTBEAT_INTERVAL_SECONDS,
        profile_interval: float = 0.0,
        context=None,
    ) -> None:
        import multiprocessing

        self.index = index
        self.heartbeat_timeout = heartbeat_timeout
        self.heartbeat_interval = heartbeat_interval
        self.profile_interval = profile_interval
        self._context = context or multiprocessing.get_context()
        self._process = None
        self._connection = None
        self._spawned = 0  # lifetime process count; spawned - 1 == restarts

    # ------------------------------------------------------------------ #
    @property
    def pid(self) -> Optional[int]:
        return self._process.pid if self._process is not None else None

    @property
    def restarts(self) -> int:
        return max(self._spawned - 1, 0)

    def alive(self) -> bool:
        return self._process is not None and self._process.is_alive()

    def ensure(self) -> str:
        """Start (or restart) the child if needed.

        Returns ``"alive"``, ``"started"`` or ``"restarted"``; raises
        :class:`WorkerStartError` when the OS refuses -- the signal the
        service uses to declare the pool unhealthy and degrade.
        """
        if self.alive():
            return "alive"
        self._dispose()
        parent_conn, child_conn = self._context.Pipe(duplex=True)
        # not daemonic: the portfolio engine forks its own racer pool
        # inside a worker, which daemonic processes may not do; orphaned
        # children exit on their own when the pipe reports EOF
        process = self._context.Process(
            target=_child_main,
            args=(child_conn, self.index, self.heartbeat_interval,
                  self.profile_interval),
            name=f"repro-serve-procworker-{self.index}",
            daemon=False,
        )
        try:
            process.start()
        except (OSError, ValueError) as exc:
            for end in (parent_conn, child_conn):
                try:
                    end.close()
                except OSError:
                    pass
            raise WorkerStartError(
                f"worker {self.index} failed to start: {exc!r}") from exc
        child_conn.close()
        self._process, self._connection = process, parent_conn
        self._spawned += 1
        return "started" if self._spawned == 1 else "restarted"

    # ------------------------------------------------------------------ #
    def run(
        self,
        spec: Dict[str, object],
        on_event: Optional[Callable[[Dict[str, object]], None]] = None,
        deadline_seconds: float = 60.0,
        cancelled: Optional[Callable[[], bool]] = None,
    ):
        """Run one job in the child.

        Returns ``(record, snapshot, log_records, metric_dump)``.  Raises
        :class:`WorkerCrash` (child died / stalled / overran the hard
        deadline -- the child is already reaped),
        :class:`WorkerJobError` (engine exception on a healthy child) or
        :class:`WorkerCancelled` (``cancelled()`` went true; the child
        was killed to stop the job).
        """
        if not self.alive():
            raise WorkerCrash("crashed", self._exitcode(),
                              "worker not running at dispatch")
        connection = self._connection
        try:
            connection.send(("job", spec))
        except (BrokenPipeError, OSError):
            raise WorkerCrash("crashed", self._put_down(),
                              "pipe closed at dispatch") from None

        deadline = time.monotonic() + deadline_seconds
        last_beat = time.monotonic()
        while True:
            try:
                ready = connection.poll(0.05)
            except (BrokenPipeError, OSError):
                raise WorkerCrash("crashed", self._put_down(),
                                  "pipe error mid-job") from None
            if ready:
                try:
                    message = connection.recv()
                except (EOFError, OSError):
                    raise WorkerCrash("crashed", self._put_down(),
                                      "worker died mid-job") from None
                last_beat = time.monotonic()
                kind = message[0]
                if kind == "event":
                    if on_event is not None:
                        on_event(message[1])
                elif kind == "prof":
                    # folded-stack sample delta from the child's
                    # continuous profiler; fold into this process's
                    # merged aggregate (served by /v1/debug/profile)
                    merged = profiler.merge(message[1])
                    if merged:
                        metrics.inc("repro_profile_samples_total",
                                    float(merged))
                elif kind == "done":
                    record, snapshot = message[1], message[2]
                    log_records = message[3] if len(message) > 3 else []
                    metric_dump = message[4] if len(message) > 4 else None
                    return record, snapshot, log_records, metric_dump
                elif kind == "failed":
                    raise WorkerJobError(str(message[1]))
                # "hb" and anything unknown: liveness only
            elif not self.alive():
                if connection.poll(0):
                    continue  # final messages still buffered; drain them
                raise WorkerCrash("crashed", self._put_down(),
                                  "worker process died mid-job")
            if cancelled is not None and cancelled():
                self._put_down()
                raise WorkerCancelled()
            now = time.monotonic()
            if now > deadline:
                raise WorkerCrash(
                    "hard_timeout", self._put_down(),
                    f"exceeded the {deadline_seconds:.1f}s hard deadline")
            if now - last_beat > self.heartbeat_timeout:
                raise WorkerCrash(
                    "stalled", self._put_down(),
                    f"no heartbeat for {self.heartbeat_timeout:.1f}s")

    # ------------------------------------------------------------------ #
    def _exitcode(self) -> Optional[int]:
        return self._process.exitcode if self._process is not None else None

    def _put_down(self) -> Optional[int]:
        """Reap the child (terminate -> kill -> join) and drop the handle."""
        process, connection = self._process, self._connection
        self._process = self._connection = None
        if process is None:
            return None
        return reap(process, connection)

    def _dispose(self) -> None:
        if self._process is not None:
            self._put_down()

    def stop(self) -> None:
        """Graceful shutdown: ask the child to exit, then make sure."""
        process, connection = self._process, self._connection
        self._process = self._connection = None
        if process is None:
            return
        try:
            connection.send(("stop",))
        except (BrokenPipeError, OSError):
            pass
        process.join(timeout=STOP_GRACE_SECONDS)
        reap(process, connection, terminate=True,
             grace=STOP_GRACE_SECONDS)
