"""The stochastic anytime mapping engine (`--approach heuristic`).

:class:`HeuristicMapper` is the third first-class backend next to the two
exact engines. One ``map()`` call runs, under a wall-clock budget:

1. the shared pre-mapping prologue of all engines (optimization pipeline,
   feasibility gate, op-aware mII);
2. for each II starting at mII: up to ``schedules_per_ii`` list-scheduling
   attempts (:func:`repro.heuristic.scheduler.list_schedule`), each with a
   re-jittered priority order and an escalating schedule horizon, and per
   schedule up to ``placements_per_schedule`` simulated-annealing placement
   runs (:func:`repro.heuristic.anneal.anneal_placement`);
3. on placement success the mapping is validated with the same
   :func:`~repro.core.validation.validate_mapping` oracle the exact
   engines use, recorded as the best mapping found, and -- because the II
   sweep is ascending, so the first valid mapping is also the best one --
   returned.

The **anytime contract**: the engine never returns an invalid mapping, and
when the budget expires it returns the best valid mapping found so far
(``TOTAL_TIMEOUT`` with no mapping only when the budget expired before any
II succeeded). Failing an II entirely *restarts* the search at the next II
with a fresh deterministic RNG stream (restart-on-II-bump), so the
behaviour at one II never depends on how much work earlier IIs consumed.

Two II sweep **strategies** (``HeuristicConfig.strategy``): ``"ascend"``
(default) walks II up from mII and stops at the first success, which is
then the best result the engine can report; ``"refine"`` walks II *down*
from the critical-path horizon toward mII, so a coarse mapping lands
almost immediately and every further success strictly lowers the II --
each improvement is delivered through ``HeuristicConfig.on_event``, which
is how the compile service streams best-so-far results
(``GET /v1/jobs/<id>/events``). Because every II draws from its own
per-(II, attempt) RNG streams, the outcome at a given II is identical
under both strategies.

**Seeding.** Every random draw descends from one integer seed, resolved by
:func:`resolve_seed` with the precedence ``explicit argument >
REPRO_PROPERTY_SEED environment variable > DEFAULT_HEURISTIC_SEED``. Two
runs with the same seed, DFG, fabric and budget knobs produce the same
mapping.
"""

from __future__ import annotations

import os
import random
import time
from typing import Dict, Optional, Tuple

from repro.arch.cgra import CGRA
from repro.core.config import HeuristicConfig
from repro.core.exceptions import InvalidMappingError
from repro.core.mapper import (
    MappingResult,
    MappingStatus,
    begin_mapping,
    run_pre_mapping_opt,
)
from repro.core.mapping import Mapping
from repro.core.validation import validate_mapping
from repro.graphs.analysis import (
    critical_path_length,
    mobility_schedule,
    res_ii,
)
from repro.graphs.dfg import DFG
from repro.heuristic.anneal import anneal_placement, hop_distances
from repro.heuristic.scheduler import capacity_groups, list_schedule
from repro.obs import hooks as obs_hooks
from repro.obs import trace as obs_trace
from repro.perf import PerfCounters

#: fallback seed when neither ``--seed`` nor ``REPRO_PROPERTY_SEED`` is set
DEFAULT_HEURISTIC_SEED = 20260730

#: priority-jitter step per restart, in priority units (mobility is worth
#: 1000 per step there, so late restarts reorder moderately, not wildly)
JITTER_STEP = 700.0


def resolve_seed(explicit: Optional[int] = None) -> int:
    """The engine-wide seed precedence, documented in docs/mapping-engines.md.

    An explicit seed (the CLI's ``--seed``) wins; otherwise the
    ``REPRO_PROPERTY_SEED`` environment variable (the same knob that pins
    the property-test generators, so one variable pins a whole CI run);
    otherwise :data:`DEFAULT_HEURISTIC_SEED` -- runs are reproducible by
    default, never wall-clock seeded.
    """
    if explicit is not None:
        return int(explicit)
    env = os.environ.get("REPRO_PROPERTY_SEED")
    if env is not None:
        return int(env)
    return DEFAULT_HEURISTIC_SEED


def _attempt_rng(seed: int, ii: int, attempt: int) -> random.Random:
    """Deterministic per-(II, attempt) RNG stream (restart-on-II-bump)."""
    return random.Random((seed * 1_000_003 + ii) * 8_191 + attempt)


class HeuristicMapper:
    """Anytime list-scheduling + annealing mapper (`Engine` protocol)."""

    def __init__(self, cgra: CGRA,
                 config: Optional[HeuristicConfig] = None) -> None:
        self.cgra = cgra
        self.config = config if config is not None else HeuristicConfig()

    # ------------------------------------------------------------------ #
    def _max_ii(self, dfg: DFG, mii: int) -> int:
        if self.config.max_ii is not None:
            return max(self.config.max_ii, mii)
        return max(mii, critical_path_length(dfg) + self.config.slack)

    def _emit(self, payload: Dict[str, object]) -> None:
        """Deliver a progress event to ``config.on_event``, if set."""
        if self.config.on_event is not None:
            self.config.on_event(payload)

    def map(self, dfg: DFG) -> MappingResult:
        """Map ``dfg``; never raises for ordinary failures."""
        started = time.monotonic()
        self._perf = None
        with obs_hooks.engine_span("heuristic"):
            result = self._map_impl(dfg)
            obs_hooks.finish_engine_run(
                "heuristic", result, started, perf=self._perf
            )
        return result

    def _map_impl(self, dfg: DFG) -> MappingResult:
        dfg.validate()
        start = time.monotonic()
        deadline = start + self.config.budget_seconds
        seed = resolve_seed(self.config.seed)
        perf = PerfCounters(detailed=self.config.profile)
        perf.extra["engine"] = "heuristic"
        perf.extra["seed"] = seed
        self._perf = perf

        dfg, opt_result = run_pre_mapping_opt(dfg, self.cgra, self.config)
        resource_ii, recurrence_ii, mii, infeasible = begin_mapping(
            dfg, self.cgra)
        if infeasible is not None:
            infeasible.total_seconds = time.monotonic() - start
            infeasible.opt = opt_result
            if opt_result is not None:
                infeasible.opt_seconds = opt_result.seconds
            infeasible.stats = perf.as_dict()
            return infeasible

        result = MappingResult(
            status=MappingStatus.NO_SOLUTION,
            mii=mii,
            res_ii=resource_ii,
            rec_ii=recurrence_ii,
            opt=opt_result,
            opt_seconds=opt_result.seconds if opt_result is not None else 0.0,
        )
        max_ii = self._max_ii(dfg, mii)
        distances = hop_distances(self.cgra)
        groups = capacity_groups(dfg, self.cgra)
        # like the exact time phase, the horizon must be long enough for
        # the array to absorb all operations at all
        needed_slack = max(
            0, res_ii(dfg, self.cgra.num_pes) - critical_path_length(dfg))
        mobs_cache: Dict[int, object] = {}
        slack_list = self.config.slack_candidates()
        moves_budget = self.config.moves_per_node * dfg.num_nodes

        counters = {
            "schedule_attempts": 0,
            "schedule_failures": 0,
            "sa_runs": 0,
            "sa_moves": 0,
            "sa_accepted": 0,
            "sa_ripups": 0,
            "ii_bumps": 0,
        }
        per_ii = []
        perf.extra["per_ii"] = per_ii
        perf.extra["heuristic"] = counters
        budget_exhausted = False
        best_mapping: Optional[Mapping] = None
        best_ii: Optional[int] = None

        def attempt_ii(ii: int) -> Tuple[Optional[Mapping], bool]:
            """One full II attempt: ``(mapping_or_None, budget_out)``.

            Every random draw comes from per-(II, attempt) streams, so
            the outcome at a given II is a pure function of (seed, II)
            -- independent of the sweep direction and of how much work
            other IIs consumed (restart-on-II-bump).
            """
            result.iis_tried += 1
            ii_entry = {"ii": ii, "time": 0.0, "space": 0.0, "schedules": 0}
            per_ii.append(ii_entry)
            for attempt in range(self.config.schedules_per_ii):
                if time.monotonic() > deadline:
                    return None, True
                rng = _attempt_rng(seed, ii, attempt)
                eff_slack = max(
                    slack_list[attempt % len(slack_list)], needed_slack)
                mobs = mobs_cache.get(eff_slack)
                if mobs is None:
                    mobs = mobility_schedule(dfg, slack=eff_slack)
                    mobs_cache[eff_slack] = mobs
                jitter = JITTER_STEP * attempt
                phase_start = time.monotonic()
                schedule = list_schedule(
                    dfg, self.cgra, ii, rng=rng, jitter=jitter,
                    mobs=mobs, groups=groups,
                )
                elapsed = time.monotonic() - phase_start
                result.time_phase_seconds += elapsed
                ii_entry["time"] = round(ii_entry["time"] + elapsed, 6)
                counters["schedule_attempts"] += 1
                if schedule is None:
                    counters["schedule_failures"] += 1
                    continue
                result.schedules_tried += 1
                ii_entry["schedules"] += 1
                for _ in range(self.config.placements_per_schedule):
                    if time.monotonic() > deadline:
                        return None, True
                    phase_start = time.monotonic()
                    outcome = anneal_placement(
                        schedule, self.cgra, rng, distances=distances,
                        max_moves=moves_budget, deadline=deadline,
                    )
                    elapsed = time.monotonic() - phase_start
                    result.space_phase_seconds += elapsed
                    ii_entry["space"] = round(ii_entry["space"] + elapsed, 6)
                    counters["sa_runs"] += 1
                    counters["sa_moves"] += outcome.moves
                    counters["sa_accepted"] += outcome.accepted
                    counters["sa_ripups"] += outcome.ripups
                    perf.space_calls += 1
                    perf.space_seconds += elapsed
                    if not outcome.found:
                        continue
                    mapping = Mapping(dfg=dfg, cgra=self.cgra,
                                      schedule=schedule,
                                      placement=outcome.placement)
                    violations = validate_mapping(mapping)
                    if violations:
                        # a zero-cost placement that fails the validator is
                        # a bug, not a search failure -- surface it loudly
                        # when validation is on, skip it when it is off
                        if self.config.validate:
                            raise InvalidMappingError(violations)
                        continue
                    return mapping, False
            return None, False

        # "ascend" walks mII upward and stops at the first success (which
        # is the best II the engine can report); "refine" walks the
        # horizon *down* toward mII so a coarse mapping lands almost
        # immediately and every further success strictly improves it --
        # the anytime stream the service exposes per job.
        descending = self.config.strategy == "refine"
        if descending:
            ii_values = range(max_ii, mii - 1, -1)
        else:
            ii_values = range(mii, max_ii + 1)
        for ii in ii_values:
            attempt_started = time.monotonic()
            with obs_trace.span("ii_attempt", ii=ii):
                mapping, budget_exhausted = attempt_ii(ii)
            obs_hooks.record_ii_attempt(
                "heuristic", time.monotonic() - attempt_started
            )
            if mapping is not None:
                best_mapping = mapping
                best_ii = ii
                obs_trace.instant("improvement", ii=ii)
                self._emit({"event": "improvement", "ii": ii, "mii": mii,
                            "elapsed": time.monotonic() - start})
                if not descending or ii == mii:
                    break
            elif not budget_exhausted:
                counters["ii_bumps"] += 1
            if budget_exhausted:
                break

        if best_mapping is not None:
            result.status = MappingStatus.SUCCESS
            result.mapping = best_mapping
            result.ii = best_ii
        elif budget_exhausted:
            result.status = MappingStatus.TOTAL_TIMEOUT
            result.message = (
                f"anytime budget ({self.config.budget_seconds:.1f}s) "
                f"exhausted after {result.iis_tried} II(s); no valid "
                "mapping found yet"
            )
        else:
            result.message = (
                f"no heuristic mapping found for II in [{mii}, {max_ii}] "
                f"({counters['schedule_attempts']} schedule attempt(s), "
                f"{counters['sa_runs']} placement run(s))"
            )
        result.total_seconds = time.monotonic() - start
        result.stats = perf.as_dict()
        return result
