"""Priority-based modulo list scheduling (the heuristic time phase).

Where the exact time phase (:mod:`repro.core.time_solver`) encodes the
modulo-scheduling constraints into SAT and searches, this scheduler builds
one schedule greedily: nodes become *ready* when all their data
predecessors are scheduled, and among the ready set the most critical node
(least mobility, then greatest height) is placed at the earliest start time
that satisfies

* **precedence** against every already-scheduled endpoint -- data edges
  lower-bound the start time, loop-carried out-edges to already-scheduled
  destinations (the PHI heads of recurrences) upper-bound it by
  ``t_dst + d*II - lat``;
* **capacity** -- at most ``num_pes`` operations per kernel slot, plus the
  per-support-class bounds on heterogeneous fabrics (a class competing for
  ``k`` compatible PEs admits at most ``k`` of its nodes per slot);
* **connectivity** -- placing a node in a slot may not push any
  already-scheduled neighbour's per-slot neighbour count past ``D_M``.

These are exactly the constraint families of paper Sec. IV-B, enforced
incrementally instead of encoded; a schedule this function returns is
accepted by :meth:`Schedule.validate_dependences` and by the capacity /
connectivity checks of :mod:`repro.core.validation` by construction.

The scheduler is deterministic for a given RNG state; restarts jitter the
priority order (``jitter > 0``) so a failed (II, slack) attempt explores a
different greedy trajectory instead of repeating itself.
"""

from __future__ import annotations

import heapq
import random
from typing import Dict, List, Optional, Tuple

from repro.arch.cgra import CGRA
from repro.core.time_solver import Schedule, _restricted_capacity_groups
from repro.graphs.analysis import MobilitySchedule, mobility_schedule
from repro.graphs.dfg import DFG, DependenceKind


def capacity_groups(dfg: DFG, cgra: CGRA) -> List[Tuple[List[int], int]]:
    """Support-class capacity bounds shared with the exact time phase."""
    return _restricted_capacity_groups(dfg, cgra)


class _State:
    """Incremental constraint bookkeeping of one scheduling attempt."""

    def __init__(self, dfg: DFG, cgra: CGRA, ii: int,
                 groups: List[Tuple[List[int], int]]) -> None:
        self.dfg = dfg
        self.ii = ii
        self.capacity = cgra.num_pes
        self.degree = cgra.connectivity_degree
        self.slot_count = [0] * ii
        # per-support-class per-slot counts (heterogeneous fabrics only)
        self.group_of: Dict[int, List[int]] = {}
        self.group_bound: List[int] = []
        self.group_count: List[List[int]] = []
        for index, (nodes, bound) in enumerate(groups):
            self.group_bound.append(bound)
            self.group_count.append([0] * ii)
            for node_id in nodes:
                self.group_of.setdefault(node_id, []).append(index)
        # per-node per-slot count of scheduled neighbours
        self.neighbor_count: Dict[int, List[int]] = {
            n: [0] * ii for n in dfg.node_ids()
        }
        self.start: Dict[int, int] = {}

    def feasible(self, node_id: int, t: int) -> bool:
        slot = t % self.ii
        if self.slot_count[slot] >= self.capacity:
            return False
        for group in self.group_of.get(node_id, ()):
            if self.group_count[group][slot] >= self.group_bound[group]:
                return False
        # placing here grows every neighbour's count for this slot --
        # including not-yet-scheduled neighbours, whose own placement
        # never re-checks slots they are not placed in
        for u in self.dfg.neighbor_ids(node_id):
            if self.neighbor_count[u][slot] + 1 > self.degree:
                return False
        return True

    def place(self, node_id: int, t: int) -> None:
        slot = t % self.ii
        self.start[node_id] = t
        self.slot_count[slot] += 1
        for group in self.group_of.get(node_id, ()):
            self.group_count[group][slot] += 1
        for u in self.dfg.neighbor_ids(node_id):
            self.neighbor_count[u][slot] += 1


def _priorities(
    dfg: DFG, mobs: MobilitySchedule, rng: random.Random, jitter: float
) -> Dict[int, float]:
    """Scheduling priority per node: critical first, tall first.

    Lower is more urgent. Mobility (ALAP - ASAP) dominates -- the classic
    modulo-scheduling priority also used by the SAT branching order -- with
    height (distance from the sinks, i.e. the horizon minus ALAP) breaking
    ties. ``jitter`` adds a uniform perturbation so restarts explore
    different greedy trajectories.
    """
    priorities: Dict[int, float] = {}
    for node_id in dfg.node_ids():
        mobility = mobs.mobility(node_id)
        height = mobs.length - mobs.latest(node_id)
        base = mobility * 1000.0 - height
        if jitter > 0.0:
            base += rng.uniform(0.0, jitter)
        priorities[node_id] = base
    return priorities


def list_schedule(
    dfg: DFG,
    cgra: CGRA,
    ii: int,
    slack: int = 0,
    rng: Optional[random.Random] = None,
    jitter: float = 0.0,
    mobs: Optional[MobilitySchedule] = None,
    groups: Optional[List[Tuple[List[int], int]]] = None,
) -> Optional[Schedule]:
    """Build one modulo schedule for ``(ii, slack)``; ``None`` on failure.

    ``mobs`` and ``groups`` can be precomputed by the caller (the engine
    reuses them across restarts of the same horizon). A failure only means
    *this greedy trajectory* found no slot for some node -- the caller
    retries with jitter, a longer horizon, or a larger II.
    """
    if ii < 1:
        raise ValueError("II must be >= 1")
    if rng is None:
        rng = random.Random(0)
    if mobs is None:
        mobs = mobility_schedule(dfg, slack=slack)
    if groups is None:
        groups = capacity_groups(dfg, cgra)

    state = _State(dfg, cgra, ii, groups)
    priorities = _priorities(dfg, mobs, rng, jitter)

    # data-DAG in-degrees drive readiness; loop-carried edges only bound
    remaining: Dict[int, int] = {}
    for node_id in dfg.node_ids():
        remaining[node_id] = sum(
            1 for e in dfg.in_edges(node_id)
            if e.kind is DependenceKind.DATA
        )
    ready = [(priorities[n], n) for n, count in remaining.items()
             if count == 0]
    heapq.heapify(ready)

    scheduled = 0
    total = dfg.num_nodes
    while ready:
        _, node_id = heapq.heappop(ready)

        lo = mobs.earliest(node_id)
        hi = mobs.latest(node_id)
        for edge in dfg.in_edges(node_id):
            src_time = state.start.get(edge.src)
            if src_time is not None:
                lat = dfg.node(edge.src).latency
                lo = max(lo, src_time + lat - edge.distance * ii)
        lat = dfg.node(node_id).latency
        for edge in dfg.out_edges(node_id):
            dst_time = state.start.get(edge.dst)
            if dst_time is not None:
                hi = min(hi, dst_time + edge.distance * ii - lat)
        if lo > hi:
            return None

        placed_at = None
        for t in range(lo, hi + 1):
            if state.feasible(node_id, t):
                placed_at = t
                break
        if placed_at is None:
            return None
        state.place(node_id, placed_at)
        scheduled += 1
        for edge in dfg.out_edges(node_id):
            if edge.kind is DependenceKind.DATA:
                remaining[edge.dst] -= 1
                if remaining[edge.dst] == 0:
                    heapq.heappush(ready, (priorities[edge.dst], edge.dst))

    if scheduled != total:  # pragma: no cover - data DAG is validated acyclic
        return None
    return Schedule(dfg=dfg, ii=ii, start_times=dict(state.start))
