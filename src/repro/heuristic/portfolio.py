"""The engine-portfolio runner (`--approach portfolio`).

:class:`PortfolioMapper` races the three first-class engines --
monomorphism, satmapit, heuristic -- on one DFG under per-engine budgets
and returns the best result: success beats failure, then lower II, then
lower wall clock, then portfolio order. Racing is either

* **sequential** (the default): engines run back to back, each under
  ``budget_seconds / len(engines)``; the race short-circuits as soon as an
  engine returns a *provably optimal* mapping (``II == mII`` -- no other
  engine can do better, only faster, and the time is already spent), or

* **process-parallel** (``PortfolioConfig.parallel``): one worker process
  per engine, the same protocol the :class:`~repro.experiments.batch`
  machinery uses (pipes, hard deadline, terminate on overrun), each under
  the full ``budget_seconds``; a provably optimal result terminates the
  remaining workers.

Whatever the mode, every engine's outcome (status, II, seconds, message)
is recorded in ``MappingResult.stats["portfolio"]`` and the winner's name
in ``stats["winner"]``, so experiments can attribute results per engine.
"""

from __future__ import annotations

import multiprocessing
import time
from typing import Dict, List, Optional, Tuple

from repro.arch.cgra import CGRA
from repro.core.config import PortfolioConfig
from repro.core.engine import create_engine
from repro.core.mapper import MappingResult, MappingStatus
from repro.core.workers import reap
from repro.graphs.dfg import DFG
from repro.obs import hooks as obs_hooks
from repro.obs import trace as obs_trace

#: wall-clock grace on top of a parallel worker's soft budget before it is
#: terminated (mirrors the batch engine's kill grace)
PARALLEL_KILL_GRACE_SECONDS = 15.0


def _outcome_record(name: str, result: Optional[MappingResult],
                    note: str = "", status: str = "error",
                    ) -> Dict[str, object]:
    if result is None:
        return {"engine": name, "status": status, "ii": None,
                "total_seconds": None, "message": note}
    return {
        "engine": name,
        "status": result.status.value,
        "ii": result.ii,
        "total_seconds": round(result.total_seconds, 6),
        "message": note or result.message,
    }


def _better(current: Optional[MappingResult], challenger: MappingResult,
            ) -> MappingResult:
    """Portfolio preference order (first argument wins ties)."""
    if current is None:
        return challenger
    if current.success != challenger.success:
        return challenger if challenger.success else current
    if current.success and challenger.success and challenger.ii != current.ii:
        return challenger if challenger.ii < current.ii else current
    if challenger.success and challenger.total_seconds < current.total_seconds:
        return challenger
    return current


def _engine_kwargs(config: PortfolioConfig, budget: float) -> Dict[str, object]:
    return {
        "timeout_seconds": budget,
        "budget_seconds": budget,
        "seed": config.seed,
        "opt_level": config.opt_level,
        "opt_passes": config.opt_passes,
        "solver_backend": config.solver_backend,
        "profile": config.profile,
        "validate": config.validate,
    }


def _portfolio_worker(name: str, dfg: DFG, cgra: CGRA,
                      kwargs: Dict[str, object], connection,
                      traced: bool = False) -> None:
    """Child-process entry point of the parallel race.

    With ``traced`` set (the parent had tracing on), the child records
    its own span buffer and ships a snapshot back alongside the result;
    the parent merges it under its portfolio span, aligning the child's
    monotonic timeline via the snapshot's wall-clock epoch anchor.
    """
    try:
        if traced:
            # shed the fork-inherited buffer and open-span stack so this
            # child's roots re-parent under the portfolio span on ingest
            obs_trace.reset()
            obs_trace.enable()
        engine = create_engine(name, cgra, **kwargs)
        result = engine.map(dfg)
        if traced:
            connection.send(("ok", result, obs_trace.snapshot()))
        else:
            connection.send(("ok", result))
    except BaseException as exc:  # noqa: BLE001 - report, parent decides
        try:
            connection.send(("error", repr(exc)))
        except (BrokenPipeError, OSError):
            pass
    finally:
        connection.close()


class PortfolioMapper:
    """Races the first-class engines on one DFG (`Engine` protocol)."""

    def __init__(self, cgra: CGRA,
                 config: Optional[PortfolioConfig] = None) -> None:
        self.cgra = cgra
        self.config = config if config is not None else PortfolioConfig()

    # ------------------------------------------------------------------ #
    def map(self, dfg: DFG) -> MappingResult:
        """Race the portfolio; never raises for ordinary failures."""
        dfg.validate()
        start = time.monotonic()
        with obs_hooks.engine_span(
            "portfolio", parallel=self.config.parallel
        ):
            if self.config.parallel:
                best, outcomes, winner = self._race_parallel(dfg)
            else:
                best, outcomes, winner = self._race_sequential(dfg, start)

            if best is None:
                best = MappingResult(
                    status=MappingStatus.NO_SOLUTION,
                    message="every portfolio engine failed",
                )
            stats = dict(best.stats) if best.stats else {}
            stats["engine"] = "portfolio"
            stats["winner"] = winner
            stats["portfolio"] = outcomes
            best.stats = stats
            best.total_seconds = time.monotonic() - start
            obs_hooks.finish_engine_run("portfolio", best, start)
        return best

    # ------------------------------------------------------------------ #
    def _race_sequential(self, dfg: DFG, start: float):
        budget = self.config.per_engine_budget()
        outcomes: List[Dict[str, object]] = []
        best: Optional[MappingResult] = None
        winner: Optional[str] = None
        for name in self.config.engines:
            if time.monotonic() - start > self.config.budget_seconds:
                outcomes.append({
                    "engine": name, "status": "skipped", "ii": None,
                    "total_seconds": None,
                    "message": "portfolio budget exhausted",
                })
                continue
            engine = create_engine(
                name, self.cgra, **_engine_kwargs(self.config, budget))
            result = engine.map(dfg)
            outcomes.append(_outcome_record(name, result))
            chosen = _better(best, result)
            if chosen is result:
                best, winner = result, name
            if result.success and result.ii == result.mii:
                # provably optimal: no engine can map at a lower II
                break
        return best, outcomes, winner

    def _race_parallel(self, dfg: DFG):
        budget = self.config.per_engine_budget()
        kwargs = _engine_kwargs(self.config, budget)
        context = multiprocessing.get_context()
        traced = obs_trace.enabled()
        race_span_id = obs_trace.current_span_id()
        running = {}
        for name in self.config.engines:
            parent_conn, child_conn = context.Pipe(duplex=False)
            process = context.Process(
                target=_portfolio_worker,
                args=(name, dfg, self.cgra, kwargs, child_conn, traced),
                daemon=True,
            )
            process.start()
            child_conn.close()
            running[name] = (process, parent_conn)

        deadline = time.monotonic() + budget + PARALLEL_KILL_GRACE_SECONDS
        results: Dict[str, MappingResult] = {}
        errors: Dict[str, Tuple[str, str]] = {}  # name -> (status, message)
        short_circuited = False
        try:
            while running:
                finished = []
                for name, (process, connection) in running.items():
                    if connection.poll(0):
                        try:
                            message = connection.recv()
                            kind, payload = message[0], message[1]
                            child_trace = (
                                message[2] if len(message) > 2 else None
                            )
                        except (EOFError, OSError):
                            kind, payload = "error", "worker pipe closed"
                            child_trace = None
                        if kind == "ok":
                            results[name] = payload
                            obs_trace.ingest(
                                child_trace,
                                parent_span_id=race_span_id,
                                trace=obs_trace.current_trace() or None,
                            )
                        else:
                            errors[name] = ("error", str(payload))
                        finished.append(name)
                    elif not process.is_alive():
                        errors[name] = (
                            "error",
                            f"worker exited with code {process.exitcode}")
                        finished.append(name)
                for name in finished:
                    process, connection = running.pop(name)
                    reap(process, connection, terminate=False)
                if any(r.success and r.ii == r.mii
                       for r in results.values()):
                    short_circuited = True
                    break  # provably optimal result arrived
                if time.monotonic() > deadline:
                    break
                if running and not finished:
                    time.sleep(0.02)
        finally:
            for name, (process, connection) in running.items():
                # terminate -> kill -> join: a worker wedged in a C-level
                # solver loop ignores SIGTERM, and the race must not leak it
                reap(process, connection)
                if short_circuited:
                    errors.setdefault(
                        name,
                        ("cancelled", "another engine proved optimality"))
                else:
                    errors.setdefault(
                        name,
                        ("hard_timeout", "terminated at portfolio deadline"))

        outcomes: List[Dict[str, object]] = []
        best: Optional[MappingResult] = None
        winner: Optional[str] = None
        for name in self.config.engines:
            if name in results:
                result = results[name]
                outcomes.append(_outcome_record(name, result))
                chosen = _better(best, result)
                if chosen is result:
                    best, winner = result, name
            else:
                status, message = errors.get(name, ("error", "no result"))
                outcomes.append(_outcome_record(
                    name, None, message, status=status))
        return best, outcomes, winner
