"""Simulated-annealing placement with rip-up (the heuristic space phase).

Given a schedule (every node carries a kernel slot), the placement problem
is an injective, adjacency- and op-compatibility-preserving assignment of
nodes to PEs -- the same problem the exact space phase solves by
monomorphism search. Here it is solved by annealing over complete (but
possibly invalid) placements under a *neighbour-aware* cost:

* **routing**: every dependence whose endpoints sit on distinct,
  non-adjacent PEs costs its interconnect hop distance minus one (the
  gradient pulls endpoints together instead of flat-penalising them);
* **overuse**: every (slot, PE) pair executing more than one operation
  costs the excess (mono1);
* **op support**: a node on a PE that does not implement its opcode costs
  a large constant (heterogeneous fabrics; proposals only draw from
  compatible PEs, but swap partners are checked and charged).

Cost zero is exactly validity: mono1 via overuse, mono3 via routing, op
support explicitly; mono2 and the timing/capacity/connectivity families
are properties of the schedule, which the list scheduler guarantees. The
returned placement is additionally re-checked against the exact total
cost before being declared valid, so incremental-delta drift can never
leak an invalid placement out.

Moves pick an offending node (one contributing cost) with high
probability, and propose either a *neighbour-aware* target -- a PE
adjacent to one of the node's placed DFG-neighbours -- or a uniform
compatible PE; a move onto an occupied (slot, PE) becomes a swap (which
keeps per-slot occupancy counts, hence the overuse term, unchanged). On
stagnation the worst nodes are ripped up and greedily re-placed and the
temperature re-warmed. Everything flows from the caller's RNG, so runs
are reproducible under a pinned seed.
"""

from __future__ import annotations

import math
import random
import time
from collections import deque
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.arch.cgra import CGRA
from repro.core.time_solver import Schedule

#: cost of one excess operation on a (slot, PE) pair
W_OVERUSE = 4.0
#: cost of an op-compatibility violation
W_OP = 16.0
#: cost per interconnect hop beyond adjacency, per dependence
W_ROUTE = 1.0

#: accepted-but-not-improving moves before a rip-up pass re-warms the search
STALL_LIMIT = 400
#: fraction of nodes ripped up on stagnation (at least one)
RIPUP_FRACTION = 0.15
#: moves between refreshes of the cached offender list
OFFENDER_REFRESH = 8


def hop_distances(cgra: CGRA) -> List[List[int]]:
    """All-pairs hop distances over the PE interconnect (BFS per PE)."""
    n = cgra.num_pes
    unreachable = n + 1
    table: List[List[int]] = []
    for source in range(n):
        dist = [unreachable] * n
        dist[source] = 0
        queue = deque([source])
        while queue:
            pe = queue.popleft()
            for other in cgra.neighbors(pe):
                if dist[other] > dist[pe] + 1:
                    dist[other] = dist[pe] + 1
                    queue.append(other)
        table.append(dist)
    return table


@dataclass
class PlacementOutcome:
    """Result of one annealing run."""

    placement: Optional[Dict[int, int]]  # node -> PE; None unless cost hit 0
    cost: float
    moves: int
    accepted: int
    ripups: int

    @property
    def found(self) -> bool:
        return self.placement is not None


class _Placer:
    """Mutable annealing state: placement, occupancy, and cost terms."""

    def __init__(self, schedule: Schedule, cgra: CGRA,
                 distances: List[List[int]], rng: random.Random) -> None:
        self.cgra = cgra
        self.dist = distances
        self.rng = rng
        self.dfg = schedule.dfg
        self.nodes = self.dfg.node_ids()
        self.slot = {n: schedule.slot(n) for n in self.nodes}
        self.edges = sorted(self.dfg.undirected_edges())
        self.adjacency: Dict[int, List[int]] = {n: [] for n in self.nodes}
        for a, b in self.edges:
            self.adjacency[a].append(b)
            self.adjacency[b].append(a)
        self.supports: Dict[int, bool] = {}
        self.candidates: Dict[int, Tuple[int, ...]] = {}
        self.candidate_sets: Dict[int, FrozenSet[int]] = {}
        for node in self.dfg.nodes():
            supporting = cgra.supporting_pes(node.opcode)
            self.candidates[node.id] = tuple(sorted(supporting))
            self.candidate_sets[node.id] = supporting
        self.pos: Dict[int, int] = {}
        self.occupant: Dict[Tuple[int, int], List[int]] = {}

    # -- cost ----------------------------------------------------------- #
    def _route_cost(self, pe_a: int, pe_b: int) -> float:
        if pe_a == pe_b:
            return 0.0
        return W_ROUTE * max(0, self.dist[pe_a][pe_b] - 1)

    def _op_cost(self, node_id: int, pe: int) -> float:
        if pe in self.candidate_sets[node_id]:
            return 0.0
        return W_OP

    def total_cost(self) -> float:
        """Exact global cost (used at init, after rip-up, and to confirm 0)."""
        cost = 0.0
        for occupants in self.occupant.values():
            if len(occupants) > 1:
                cost += W_OVERUSE * (len(occupants) - 1)
        for node_id in self.nodes:
            cost += self._op_cost(node_id, self.pos[node_id])
        for a, b in self.edges:
            cost += self._route_cost(self.pos[a], self.pos[b])
        return cost

    def offenders(self) -> List[int]:
        """Nodes currently contributing cost."""
        hot = set()
        for occupants in self.occupant.values():
            if len(occupants) > 1:
                hot.update(occupants)
        for node_id in self.nodes:
            if self._op_cost(node_id, self.pos[node_id]) > 0.0:
                hot.add(node_id)
        for a, b in self.edges:
            if self._route_cost(self.pos[a], self.pos[b]) > 0.0:
                hot.add(a)
                hot.add(b)
        return sorted(hot)

    def node_cost(self, node_id: int) -> float:
        """Local cost of one node (rip-up victim selection only)."""
        pe = self.pos[node_id]
        cost = self._op_cost(node_id, pe)
        occupants = self.occupant.get((self.slot[node_id], pe), ())
        if len(occupants) > 1:
            cost += W_OVERUSE
        for other in self.adjacency[node_id]:
            cost += self._route_cost(pe, self.pos[other])
        return cost

    # -- occupancy ------------------------------------------------------ #
    def put(self, node_id: int, pe: int) -> None:
        self.pos[node_id] = pe
        self.occupant.setdefault((self.slot[node_id], pe), []).append(node_id)

    def take(self, node_id: int) -> None:
        pe = self.pos.pop(node_id)
        key = (self.slot[node_id], pe)
        occupants = self.occupant[key]
        occupants.remove(node_id)
        if not occupants:
            del self.occupant[key]

    # -- greedy (re)placement ------------------------------------------- #
    def _greedy_pe(self, node_id: int) -> int:
        """Cheapest compatible PE for one node given current placements."""
        best_pe = None
        best_cost = None
        candidates = self.candidates[node_id]
        offset = self.rng.randrange(len(candidates))
        slot = self.slot[node_id]
        for i in range(len(candidates)):
            pe = candidates[(offset + i) % len(candidates)]
            cost = W_OVERUSE * len(self.occupant.get((slot, pe), ()))
            for other in self.adjacency[node_id]:
                other_pe = self.pos.get(other)
                if other_pe is not None:
                    cost += self._route_cost(pe, other_pe)
            if best_cost is None or cost < best_cost:
                best_cost, best_pe = cost, pe
                if cost == 0.0:
                    break
        return best_pe

    def greedy_place(self, nodes: List[int]) -> None:
        order = sorted(nodes, key=lambda n: (-len(self.adjacency[n]), n))
        for node_id in order:
            self.put(node_id, self._greedy_pe(node_id))

    # -- move machinery -------------------------------------------------- #
    def propose_target(self, node_id: int) -> int:
        """Neighbour-aware proposal: near a placed DFG-neighbour, or uniform."""
        neighbors = self.adjacency[node_id]
        if neighbors and self.rng.random() < 0.65:
            anchor = self.pos[self.rng.choice(neighbors)]
            near = sorted(self.candidate_sets[node_id]
                          & self.cgra.neighbors_or_self(anchor))
            if near:
                return self.rng.choice(near)
        return self.rng.choice(self.candidates[node_id])

    def move_delta(self, node_id: int, target: int,
                   swap_with: Optional[int]) -> float:
        """Exact cost delta of the proposed move/swap, computed *before*
        it is applied.

        A swap exchanges two occupants of one kernel slot, leaving every
        (slot, PE) occupancy count -- and with it the overuse term --
        unchanged. A plain move only ever targets an empty (slot, PE)
        (occupied targets become swaps), so its overuse delta is the
        possible relief of the source pair.
        """
        source = self.pos[node_id]
        new_pos = {node_id: target}
        if swap_with is not None:
            new_pos[swap_with] = source
        delta = 0.0
        seen = set()
        for moved, moved_new in new_pos.items():
            moved_old = self.pos[moved]
            delta += self._op_cost(moved, moved_new)
            delta -= self._op_cost(moved, moved_old)
            for other in self.adjacency[moved]:
                key = (moved, other) if moved < other else (other, moved)
                if key in seen:
                    continue
                seen.add(key)
                other_old = self.pos[other]
                other_new = new_pos.get(other, other_old)
                delta += self._route_cost(moved_new, other_new)
                delta -= self._route_cost(moved_old, other_old)
        if swap_with is None:
            occupants = len(self.occupant[(self.slot[node_id], source)])
            if occupants >= 2:
                delta -= W_OVERUSE
        return delta

    def apply(self, node_id: int, target: int,
              swap_with: Optional[int]) -> None:
        source = self.pos[node_id]
        self.take(node_id)
        if swap_with is not None:
            self.take(swap_with)
            self.put(swap_with, source)
        self.put(node_id, target)


def anneal_placement(
    schedule: Schedule,
    cgra: CGRA,
    rng: random.Random,
    distances: Optional[List[List[int]]] = None,
    max_moves: int = 20000,
    deadline: Optional[float] = None,
) -> PlacementOutcome:
    """Run one annealing pass; returns the placement iff cost reached 0."""
    if distances is None:
        distances = hop_distances(cgra)
    placer = _Placer(schedule, cgra, distances, rng)
    placer.greedy_place(list(placer.nodes))

    cost = placer.total_cost()
    temperature = max(1.0, cost / max(1, len(placer.nodes)))
    initial_temperature = temperature
    alpha = 0.999
    moves = accepted = ripups = 0
    stall = 0
    offenders: List[int] = placer.offenders()

    while cost > 1e-9 and moves < max_moves:
        if deadline is not None and moves % 64 == 0 \
                and time.monotonic() > deadline:
            break
        moves += 1
        if moves % OFFENDER_REFRESH == 1 or not offenders:
            offenders = placer.offenders()
            if not offenders:
                cost = placer.total_cost()
                continue
        if placer.rng.random() < 0.85:
            node_id = placer.rng.choice(offenders)
        else:
            node_id = placer.rng.choice(placer.nodes)
        target = placer.propose_target(node_id)
        if target == placer.pos[node_id]:
            continue
        swap_with = None
        occupants = placer.occupant.get((placer.slot[node_id], target))
        if occupants:
            swap_with = placer.rng.choice(occupants)
            if placer.pos[node_id] not in placer.candidate_sets[swap_with]:
                continue  # the swap would strand the partner; skip cheaply

        delta = placer.move_delta(node_id, target, swap_with)
        if delta <= 0 or placer.rng.random() < math.exp(
                -delta / max(temperature, 1e-9)):
            placer.apply(node_id, target, swap_with)
            accepted += 1
            cost += delta
            stall = 0 if delta < 0 else stall + 1
        else:
            stall += 1
        temperature *= alpha

        if stall >= STALL_LIMIT:
            ripups += 1
            stall = 0
            victims = sorted(
                placer.nodes, key=lambda n: -placer.node_cost(n),
            )[: max(1, int(len(placer.nodes) * RIPUP_FRACTION))]
            for victim in victims:
                placer.take(victim)
            placer.greedy_place(victims)
            cost = placer.total_cost()
            offenders = placer.offenders()
            temperature = max(temperature, initial_temperature * 0.5)

    # confirm against the exact sum before declaring validity: the
    # incremental deltas are exact by construction, but the contract of
    # this function is "placement implies valid", so make it structural
    if cost <= 1e-9 and placer.total_cost() == 0.0:
        return PlacementOutcome(placement=dict(placer.pos), cost=0.0,
                                moves=moves, accepted=accepted, ripups=ripups)
    return PlacementOutcome(placement=None, cost=cost, moves=moves,
                            accepted=accepted, ripups=ripups)
