"""The stochastic anytime mapping engine and the engine portfolio.

This package is the third first-class mapping backend next to the exact
decoupled mapper (:mod:`repro.core.mapper`) and the exact coupled baseline
(:mod:`repro.baseline.satmapit`):

* :mod:`repro.heuristic.scheduler` -- a priority-based modulo list
  scheduler (height/mobility-ordered, starting at mII) producing the same
  :class:`~repro.core.time_solver.Schedule` objects as the SAT time phase;
* :mod:`repro.heuristic.anneal` -- simulated-annealing placement with
  rip-up on the MRRG, with a neighbour-aware cost (unroutable operands,
  PE/slot overuse, op-compatibility violations);
* :mod:`repro.heuristic.engine` -- :class:`HeuristicMapper`, the anytime
  driver: restart-on-II-bump, seeded RNG, time-budgeted, always returning
  the best *valid* mapping found so far;
* :mod:`repro.heuristic.portfolio` -- :class:`PortfolioMapper`, racing
  {monomorphism, satmapit, heuristic} under per-engine budgets.

All of them satisfy the :class:`repro.core.engine.Engine` protocol.
"""

from repro.core.config import HeuristicConfig, PortfolioConfig
from repro.heuristic.anneal import PlacementOutcome, anneal_placement
from repro.heuristic.engine import (
    DEFAULT_HEURISTIC_SEED,
    HeuristicMapper,
    resolve_seed,
)
from repro.heuristic.portfolio import PortfolioMapper
from repro.heuristic.scheduler import list_schedule

__all__ = [
    "DEFAULT_HEURISTIC_SEED",
    "HeuristicConfig",
    "HeuristicMapper",
    "PlacementOutcome",
    "PortfolioConfig",
    "PortfolioMapper",
    "anneal_placement",
    "list_schedule",
    "resolve_seed",
]
