"""Per-PR perf trajectory for the ``BENCH_*.json`` artifacts.

The benchmark suites used to overwrite their artifact on every run, so the
repository never accumulated a perf record: each PR's speedups replaced
the previous PR's. :func:`update_artifact` keeps the latest-run summary
fields readers rely on *and* appends a per-commit record -- git SHA, UTC
date, backend tier, measured speedups -- to a ``history`` list that
survives reruns:

* summary fields are merged over the existing artifact, so independent
  benchmark legs (e.g. the arena-vs-reference and native-vs-arena legs of
  ``bench_solver.py``) can update one file without clobbering each other;
* history entries are keyed by ``(label, git_sha)``: re-running a bench on
  the same commit replaces its entry instead of duplicating it, while a
  new commit appends -- one trajectory point per PR per measurement.

A missing or corrupt artifact simply starts a fresh history; reading the
trajectory is documented in docs/performance.md.
"""

from __future__ import annotations

import datetime
import json
import pathlib
import subprocess
from typing import Dict, Optional


def current_git_sha() -> Optional[str]:
    """HEAD's commit SHA, or ``None`` outside a git checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True,
            text=True,
            timeout=10,
            cwd=pathlib.Path(__file__).resolve().parent,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else None


def _load(path: pathlib.Path) -> Dict[str, object]:
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError):
        return {}
    return data if isinstance(data, dict) else {}


def update_artifact(
    path: pathlib.Path,
    summary: Dict[str, object],
    history_entry: Optional[Dict[str, object]] = None,
) -> Dict[str, object]:
    """Merge ``summary`` into the artifact and append a history record.

    ``history_entry`` should carry a ``label`` naming the measurement
    (e.g. ``"native-vs-arena"``) plus whatever speedups/tiers the bench
    recorded; the commit SHA and UTC date are stamped in here. Returns
    the artifact as written.
    """
    data = _load(path)
    history = data.get("history")
    if not isinstance(history, list):
        history = []
    data.update(summary)
    if history_entry is not None:
        entry = dict(history_entry)
        entry.setdefault("git_sha", current_git_sha())
        entry.setdefault(
            "date",
            datetime.datetime.now(datetime.timezone.utc)
            .strftime("%Y-%m-%d"),
        )
        label = entry.get("label")
        history = [
            old
            for old in history
            if not (
                isinstance(old, dict)
                and old.get("label") == label
                and old.get("git_sha") == entry["git_sha"]
            )
        ]
        history.append(entry)
    data["history"] = history
    path.write_text(json.dumps(data, indent=2) + "\n", encoding="utf-8")
    return data
