"""Per-PR perf trajectory for the ``BENCH_*.json`` artifacts.

The benchmark suites used to overwrite their artifact on every run, so the
repository never accumulated a perf record: each PR's speedups replaced
the previous PR's. :func:`update_artifact` keeps the latest-run summary
fields readers rely on *and* appends a per-commit record -- git SHA, UTC
date, backend tier, measured speedups -- to a ``history`` list that
survives reruns:

* summary fields are merged over the existing artifact, so independent
  benchmark legs (e.g. the arena-vs-reference and native-vs-arena legs of
  ``bench_solver.py``) can update one file without clobbering each other;
* history entries are keyed by ``(label, git_sha)``: re-running a bench on
  the same commit replaces its entry instead of duplicating it, while a
  new commit appends -- one trajectory point per PR per measurement.

A missing or corrupt artifact simply starts a fresh history; reading the
trajectory is documented in docs/performance.md.

The history is also what the perf-regression sentinel reads:
:func:`compare_history` walks each label's trajectory and flags the
latest entry when a tracked metric moved the wrong way past a tolerance
band -- ``speedup``-style metrics are higher-is-better, ``*overhead*``
and ``*seconds*`` metrics are lower-is-better. A deliberate trade-off
is recorded by marking the new entry ``"blessed": true``: the sentinel
accepts it and it becomes the baseline the next commit is judged
against. ``tools/check_bench.py`` is the CLI over this.
"""

from __future__ import annotations

import datetime
import json
import pathlib
import subprocess
from typing import Dict, List, Optional, Tuple


def current_git_sha() -> Optional[str]:
    """HEAD's commit SHA, or ``None`` outside a git checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True,
            text=True,
            timeout=10,
            cwd=pathlib.Path(__file__).resolve().parent,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else None


def _load(path: pathlib.Path) -> Dict[str, object]:
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError):
        return {}
    return data if isinstance(data, dict) else {}


def update_artifact(
    path: pathlib.Path,
    summary: Dict[str, object],
    history_entry: Optional[Dict[str, object]] = None,
) -> Dict[str, object]:
    """Merge ``summary`` into the artifact and append a history record.

    ``history_entry`` should carry a ``label`` naming the measurement
    (e.g. ``"native-vs-arena"``) plus whatever speedups/tiers the bench
    recorded; the commit SHA and UTC date are stamped in here. Returns
    the artifact as written.
    """
    data = _load(path)
    history = data.get("history")
    if not isinstance(history, list):
        history = []
    data.update(summary)
    if history_entry is not None:
        entry = dict(history_entry)
        entry.setdefault("git_sha", current_git_sha())
        entry.setdefault(
            "date",
            datetime.datetime.now(datetime.timezone.utc)
            .strftime("%Y-%m-%d"),
        )
        label = entry.get("label")
        history = [
            old
            for old in history
            if not (
                isinstance(old, dict)
                and old.get("label") == label
                and old.get("git_sha") == entry["git_sha"]
            )
        ]
        history.append(entry)
    data["history"] = history
    path.write_text(json.dumps(data, indent=2) + "\n", encoding="utf-8")
    return data


# --------------------------------------------------------------------- #
# Perf-regression sentinel: compare a label's latest history entry
# against its previous one, per tracked metric.

#: below this absolute value, lower-is-better metrics are considered
#: noise and never flagged (an overhead going 0.00005 -> 0.0001 doubled
#: relatively but is still negligible)
OVERHEAD_NOISE_FLOOR = 1e-3

#: entry keys that are never treated as metrics
_NON_METRIC_KEYS = frozenset((
    "label", "git_sha", "date", "blessed", "benchmarks", "backend_tier",
    "threshold", "threshold_speedup", "target_speedup", "runs_per_leg",
))


def metric_direction(name: str) -> Optional[str]:
    """``"higher"`` / ``"lower"`` for tracked metrics, ``None`` otherwise.

    ``speedup``-style metrics regress by going down; ``overhead`` and
    wall-clock ``seconds`` metrics regress by going up. Anything else
    in a history entry (counts, tiers, dates) is not compared.
    """
    if name in _NON_METRIC_KEYS or name.startswith("target"):
        return None
    if "speedup" in name:
        return "higher"
    if "overhead" in name or "seconds" in name:
        return "lower"
    return None


def tracked_metrics(entry: Dict[str, object]) -> Dict[str, float]:
    """The numeric, direction-tracked metrics of one history entry."""
    metrics: Dict[str, float] = {}
    for key, value in entry.items():
        if metric_direction(key) is None:
            continue
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            continue
        metrics[key] = float(value)
    return metrics


def compare_entries(
    previous: Dict[str, object],
    latest: Dict[str, object],
    tolerance: float = 0.10,
    overhead_floor: float = OVERHEAD_NOISE_FLOOR,
) -> List[Dict[str, object]]:
    """Regression findings for one (previous, latest) entry pair.

    A higher-is-better metric regresses when it drops below
    ``previous * (1 - tolerance)``; a lower-is-better metric when it
    rises above ``previous * (1 + tolerance)`` *and* exceeds
    ``overhead_floor`` in absolute terms. A latest entry marked
    ``"blessed": true`` is accepted wholesale (deliberate trade-off;
    it resets the baseline). Each finding dict carries ``label``,
    ``metric``, ``previous``, ``latest``, ``change`` (signed relative
    move) and the two git SHAs.
    """
    if latest.get("blessed") is True:
        return []
    findings: List[Dict[str, object]] = []
    before = tracked_metrics(previous)
    after = tracked_metrics(latest)
    for name in sorted(set(before) & set(after)):
        old, new = before[name], after[name]
        if old <= 0:
            continue
        change = (new - old) / old
        direction = metric_direction(name)
        regressed = (
            new < old * (1.0 - tolerance)
            if direction == "higher"
            else new > old * (1.0 + tolerance) and new > overhead_floor
        )
        if regressed:
            findings.append({
                "label": latest.get("label"),
                "metric": name,
                "direction": direction,
                "previous": old,
                "latest": new,
                "change": change,
                "previous_sha": previous.get("git_sha"),
                "latest_sha": latest.get("git_sha"),
            })
    return findings


def compare_history(
    history: List[Dict[str, object]],
    tolerance: float = 0.10,
    overhead_floor: float = OVERHEAD_NOISE_FLOOR,
) -> Tuple[List[Dict[str, object]], int]:
    """Sentinel pass over a full ``history`` list.

    Groups entries by ``label`` (list order is chronological -- that is
    :func:`update_artifact`'s append discipline), compares each label's
    latest entry against the one before it, and returns
    ``(findings, comparisons)`` where ``comparisons`` counts the metric
    values actually checked (0 means every label has a single entry, so
    there was nothing to judge -- not a failure).
    """
    by_label: Dict[str, List[Dict[str, object]]] = {}
    for entry in history:
        if not isinstance(entry, dict):
            continue
        label = entry.get("label")
        if isinstance(label, str) and label:
            by_label.setdefault(label, []).append(entry)
    findings: List[Dict[str, object]] = []
    comparisons = 0
    for label in sorted(by_label):
        entries = by_label[label]
        if len(entries) < 2:
            continue
        previous, latest = entries[-2], entries[-1]
        comparisons += len(
            set(tracked_metrics(previous)) & set(tracked_metrics(latest)))
        findings.extend(compare_entries(
            previous, latest, tolerance=tolerance,
            overhead_floor=overhead_floor))
    return findings, comparisons


def bless_latest(path: pathlib.Path, label: str) -> bool:
    """Mark ``label``'s newest history entry in ``path`` as blessed.

    Returns ``True`` if an entry was updated. Blessing records that the
    latest measurement is a deliberate trade-off: the sentinel accepts
    it and subsequent commits are compared against it instead.
    """
    data = _load(path)
    history = data.get("history")
    if not isinstance(history, list):
        return False
    for entry in reversed(history):
        if isinstance(entry, dict) and entry.get("label") == label:
            entry["blessed"] = True
            path.write_text(json.dumps(data, indent=2) + "\n",
                            encoding="utf-8")
            return True
    return False
