"""The ``repro-map profile`` driver: per-benchmark per-phase attribution.

Runs one mapping per requested benchmark with profiling enabled (detailed
in-loop wall-clock attribution for the SAT engines, per-phase and
per-component counters for all of them) and collects the
``MappingResult.stats`` payloads into one JSON-ready report. Any of the
four approaches can be profiled -- the engines are built through
:func:`repro.core.engine.create_engine`. Used by the CLI; importable for
scripting::

    from repro.perf.profile import profile_benchmarks
    report = profile_benchmarks(["aes"], size="4x4")
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.core.engine import create_engine
from repro.experiments.runner import build_cgra_from_arch
from repro.workloads.suite import load_benchmark


def profile_case(
    benchmark: str,
    size: str = "4x4",
    approach: str = "monomorphism",
    timeout_seconds: float = 120.0,
    arch: Optional[str] = None,
    opt_level=0,
    opt_passes: Optional[Sequence[str]] = None,
    solver_backend: str = "arena",
    seed: Optional[int] = None,
) -> Dict[str, object]:
    """Profile one (benchmark, size, approach) case; returns a JSON record."""
    dfg = load_benchmark(benchmark)
    cgra = build_cgra_from_arch(size, arch)
    mapper = create_engine(
        approach,
        cgra,
        timeout_seconds=timeout_seconds,
        seed=seed,
        opt_level=opt_level,
        opt_passes=tuple(opt_passes) if opt_passes else None,
        solver_backend=solver_backend,
        profile=True,
    )
    result = mapper.map(dfg)
    return {
        "benchmark": benchmark,
        "cgra": cgra.size_label,
        "approach": approach,
        "arch": arch,
        "status": result.status.value,
        "ii": result.ii,
        "mii": result.mii,
        "schedules_tried": result.schedules_tried,
        "iis_tried": result.iis_tried,
        "time_phase_seconds": round(result.time_phase_seconds, 6),
        "space_phase_seconds": round(result.space_phase_seconds, 6),
        "opt_seconds": round(result.opt_seconds, 6),
        "total_seconds": round(result.total_seconds, 6),
        "stats": result.stats,
    }


def profile_benchmarks(
    benchmarks: Sequence[str],
    size: str = "4x4",
    approach: str = "monomorphism",
    timeout_seconds: float = 120.0,
    arch: Optional[str] = None,
    opt_level=0,
    opt_passes: Optional[Sequence[str]] = None,
    solver_backend: str = "arena",
    seed: Optional[int] = None,
) -> List[Dict[str, object]]:
    """Profile a list of benchmarks; one record per benchmark."""
    return [
        profile_case(
            benchmark,
            size=size,
            approach=approach,
            timeout_seconds=timeout_seconds,
            arch=arch,
            opt_level=opt_level,
            opt_passes=opt_passes,
            solver_backend=solver_backend,
            seed=seed,
        )
        for benchmark in benchmarks
    ]
