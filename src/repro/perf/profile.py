"""The ``repro-map profile`` driver: per-benchmark per-phase attribution.

Runs one mapping per requested benchmark with profiling enabled (detailed
in-loop wall-clock attribution for the SAT engines, per-phase and
per-component counters for all of them) and collects the
``MappingResult.stats`` payloads into one JSON-ready report. Any of the
four approaches can be profiled -- the engines are built through
:func:`repro.core.engine.create_engine`. Used by the CLI; importable for
scripting::

    from repro.perf.profile import profile_benchmarks
    report = profile_benchmarks(["aes"], size="4x4")

This module also owns the *rendering* of performance summaries so the
two CLI surfaces cannot drift: :func:`render_profile_table` backs
``repro-map profile`` and :func:`render_metrics_table` backs
``repro-map map --metrics`` (fed by :func:`repro.obs.metrics.snapshot`).
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence

from repro.core.engine import create_engine
from repro.experiments.runner import build_cgra_from_arch
from repro.reporting.tables import Table, format_seconds
from repro.workloads.suite import load_benchmark


def profile_case(
    benchmark: str,
    size: str = "4x4",
    approach: str = "monomorphism",
    timeout_seconds: float = 120.0,
    arch: Optional[str] = None,
    opt_level=0,
    opt_passes: Optional[Sequence[str]] = None,
    solver_backend: str = "arena",
    seed: Optional[int] = None,
) -> Dict[str, object]:
    """Profile one (benchmark, size, approach) case; returns a JSON record."""
    dfg = load_benchmark(benchmark)
    cgra = build_cgra_from_arch(size, arch)
    mapper = create_engine(
        approach,
        cgra,
        timeout_seconds=timeout_seconds,
        seed=seed,
        opt_level=opt_level,
        opt_passes=tuple(opt_passes) if opt_passes else None,
        solver_backend=solver_backend,
        profile=True,
    )
    result = mapper.map(dfg)
    return {
        "benchmark": benchmark,
        "cgra": cgra.size_label,
        "approach": approach,
        "arch": arch,
        "status": result.status.value,
        "ii": result.ii,
        "mii": result.mii,
        "schedules_tried": result.schedules_tried,
        "iis_tried": result.iis_tried,
        "time_phase_seconds": round(result.time_phase_seconds, 6),
        "space_phase_seconds": round(result.space_phase_seconds, 6),
        "opt_seconds": round(result.opt_seconds, 6),
        "total_seconds": round(result.total_seconds, 6),
        "stats": result.stats,
    }


def render_profile_table(
    records: Sequence[Dict[str, object]],
    approach: str,
    size: str,
    solver_backend: str = "arena",
) -> Table:
    """The ``repro-map profile`` summary table for a list of records."""
    kernel = solver_backend
    tiers = {record["stats"].get("solver_tier") for record in records}
    tiers.discard(None)
    if tiers:
        # the native backend resolves to a concrete tier at solve time
        kernel += " -> " + "/".join(sorted(tiers))
    table = Table(
        headers=["Benchmark", "Status", "II", "Encode", "Solve", "Propagate",
                 "Analyze", "Space", "Conflicts", "Props", "Learnts"],
        title=f"Profile -- {approach} on {size} ({kernel} kernel)",
    )
    for record in records:
        seconds = record["stats"]["seconds"]
        solver = record["stats"]["solver"]
        table.add_row(
            record["benchmark"],
            record["status"],
            record["ii"],
            format_seconds(seconds["encode"]),
            format_seconds(seconds["solve"]),
            format_seconds(seconds.get("propagate")),
            format_seconds(seconds.get("analyze")),
            format_seconds(seconds["space"]),
            solver["conflicts"],
            solver["propagations"],
            solver["learnts"],
        )
    return table


def render_metrics_table(
    snapshot: Mapping[str, Mapping[str, float]],
    title: str = "Metrics -- this process",
) -> Table:
    """The ``repro-map map --metrics`` summary table.

    ``snapshot`` is :func:`repro.obs.metrics.snapshot` output:
    ``{metric: {label_string: value}}`` with histograms already folded
    to ``*_sum`` / ``*_count`` series. Values render through the same
    cell formatting as the profile table.
    """
    table = Table(headers=["Metric", "Labels", "Value"], title=title)
    for name in sorted(snapshot):
        series = snapshot[name]
        for labels in sorted(series):
            value = series[labels]
            if name.endswith("_seconds") or name.endswith("_seconds_sum") \
                    or name.endswith("_seconds_total"):
                cell: object = format_seconds(value)
            elif float(value).is_integer():
                cell = int(value)
            else:
                cell = value
            table.add_row(name, labels or "-", cell)
    return table


def profile_benchmarks(
    benchmarks: Sequence[str],
    size: str = "4x4",
    approach: str = "monomorphism",
    timeout_seconds: float = 120.0,
    arch: Optional[str] = None,
    opt_level=0,
    opt_passes: Optional[Sequence[str]] = None,
    solver_backend: str = "arena",
    seed: Optional[int] = None,
) -> List[Dict[str, object]]:
    """Profile a list of benchmarks; one record per benchmark."""
    return [
        profile_case(
            benchmark,
            size=size,
            approach=approach,
            timeout_seconds=timeout_seconds,
            arch=arch,
            opt_level=opt_level,
            opt_passes=opt_passes,
            solver_backend=solver_backend,
            seed=seed,
        )
        for benchmark in benchmarks
    ]
