"""Performance observability for the solver stack and the mapping engines.

Every experiment in this repository bottoms out in SAT calls, so "where did
the time go" is a first-class question. This package provides the one object
the whole stack shares:

:class:`PerfCounters`
    A flat bag of per-phase counters and wall-clock accumulators. One
    instance is created per ``map()`` call by both mapping engines, handed
    down through :class:`~repro.smt.csp.FiniteDomainProblem` into the
    :class:`~repro.smt.sat.SATSolver` kernel (and into the space phase),
    and surfaced as ``MappingResult.stats``.

Counter semantics:

* **counters** (conflicts, decisions, propagations, restarts, learnt-clause
  bookkeeping, space-search nodes) are *always* maintained -- they are
  integer additions on cold paths and cost nothing measurable;
* **wall-clock attribution** for the solver-internal phases (propagate /
  analyze / reduce) is only recorded when ``detailed=True``, because it
  inserts two clock reads per CDCL loop iteration into the hottest loop in
  the repository. Coarse timings (encode, whole solve calls, space search)
  are always recorded.

``repro-map profile`` runs a mapping with ``detailed=True`` and emits the
result as JSON; see ``docs/performance.md``.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Optional


@dataclass
class PerfCounters:
    """Per-phase counters and wall-clock attribution for one mapping run."""

    #: record propagate/analyze/reduce wall clock inside the CDCL loop
    detailed: bool = False

    # -- wall clock (seconds) ------------------------------------------- #
    encode_seconds: float = 0.0    # building CNF: domains, constraints, sync
    solve_seconds: float = 0.0     # inside SATSolver.solve, end to end
    propagate_seconds: float = 0.0  # detailed only
    analyze_seconds: float = 0.0    # detailed only
    reduce_seconds: float = 0.0     # detailed only
    space_seconds: float = 0.0     # monomorphism search (decoupled engine)

    # -- solver counters ------------------------------------------------ #
    solve_calls: int = 0
    conflicts: int = 0
    decisions: int = 0
    propagations: int = 0
    restarts: int = 0
    learnts: int = 0           # learnt clauses attached
    glue_learnts: int = 0      # learnt clauses with LBD <= 2 (kept forever)
    learnts_deleted: int = 0   # removed by clause-DB reduction
    reductions: int = 0        # reduce-DB passes

    # -- space phase ----------------------------------------------------- #
    space_calls: int = 0
    space_nodes_explored: int = 0
    space_backtracks: int = 0

    # -- free-form extras (engine name, backend, ...) -------------------- #
    extra: Dict[str, object] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, object]:
        """The ``MappingResult.stats`` payload (JSON-ready)."""
        seconds = {
            "encode": round(self.encode_seconds, 6),
            "solve": round(self.solve_seconds, 6),
            "space": round(self.space_seconds, 6),
        }
        if self.detailed:
            seconds["propagate"] = round(self.propagate_seconds, 6)
            seconds["analyze"] = round(self.analyze_seconds, 6)
            seconds["reduce"] = round(self.reduce_seconds, 6)
        payload: Dict[str, object] = {
            "detailed": self.detailed,
            "seconds": seconds,
            "solver": {
                "solve_calls": self.solve_calls,
                "conflicts": self.conflicts,
                "decisions": self.decisions,
                "propagations": self.propagations,
                "restarts": self.restarts,
                "learnts": self.learnts,
                "glue_learnts": self.glue_learnts,
                "learnts_deleted": self.learnts_deleted,
                "reductions": self.reductions,
            },
            "space": {
                "calls": self.space_calls,
                "nodes_explored": self.space_nodes_explored,
                "backtracks": self.space_backtracks,
            },
        }
        payload.update(self.extra)
        return payload


@contextmanager
def timed(perf: Optional[PerfCounters], attribute: str):
    """Accumulate the block's wall clock into ``perf.<attribute>``.

    A ``None`` perf object makes the context manager a no-op, so call sites
    do not need to guard. Only used on cold paths (encoding, space search);
    the CDCL loop times itself with inline clock reads instead.
    """
    if perf is None:
        yield
        return
    start = time.monotonic()
    try:
        yield
    finally:
        setattr(perf, attribute,
                getattr(perf, attribute) + time.monotonic() - start)
