"""Architecture-scenario sweep: II across heterogeneous fabrics.

For a set of benchmarks and one array size, map every benchmark onto every
requested fabric (presets from :mod:`repro.arch.spec` and/or spec files)
and print the achieved II side by side. This is the scenario axis the
ROADMAP calls for: the same kernels, the same mapper, different hardware --
memory-capable columns, mul-sparse checkerboards, or any fabric described
in a JSON spec.

Runs through the :class:`~repro.experiments.batch.BatchRunner`, so
``--jobs`` parallelises across (benchmark, fabric) cases and ``--cache``
makes re-runs free.

Usage::

    repro-map archsweep --benchmarks bitcount susan --size 4x4 \
        --archs homogeneous_torus memory_column_mesh mul_sparse_checkerboard \
        --jobs 4 --cache arch-results.jsonl
"""

from __future__ import annotations

import argparse
from typing import List, Optional, Sequence

from repro.arch.spec import preset_names, resolve_arch
from repro.core.engine import engine_choices
from repro.experiments.batch import BatchCase, BatchRunner
from repro.experiments.runner import parse_size
from repro.reporting.tables import Table
from repro.workloads.suite import spec

DEFAULT_BENCHMARKS: Sequence[str] = ("bitcount", "susan", "crc32", "fft")
DEFAULT_ARCHS: Sequence[str] = (
    "homogeneous_torus",
    "memory_column_mesh",
    "mul_sparse_checkerboard",
)


def build_arch_cases(
    benchmarks: Sequence[str],
    size: str,
    archs: Sequence[str],
    timeout_seconds: float,
    approach: str = "monomorphism",
) -> List[BatchCase]:
    """The (benchmark x fabric) grid, ordered benchmark -> fabric."""
    return [
        BatchCase(benchmark=benchmark, size=size, approach=approach,
                  timeout_seconds=timeout_seconds, arch=arch)
        for benchmark in benchmarks
        for arch in archs
    ]


def _cell(result) -> str:
    if result is None:
        return "?"
    if result.succeeded:
        return str(result.ii)
    return result.status


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-map archsweep",
        description="Compare achieved II across CGRA fabrics "
                    "(architecture presets and/or arch-spec JSON files)",
    )
    parser.add_argument("--benchmarks", nargs="+",
                        default=list(DEFAULT_BENCHMARKS),
                        help="benchmark subset (default: a 4-kernel sample)")
    parser.add_argument("--size", default="4x4",
                        help="array size used for the presets (default 4x4)")
    parser.add_argument("--archs", nargs="+", default=list(DEFAULT_ARCHS),
                        help=f"fabrics to compare: presets {preset_names()} "
                             "or paths to arch-spec JSON files")
    parser.add_argument("--approach", default="monomorphism",
                        choices=engine_choices(),
                        help="mapper approach (default: decoupled)")
    parser.add_argument("--timeout", type=float, default=60.0,
                        help="per-case soft timeout in seconds")
    parser.add_argument("--jobs", type=int, default=1,
                        help="concurrent worker processes")
    parser.add_argument("--cache", default=None,
                        help="JSONL result cache shared with `sweep`")
    parser.add_argument("--csv", default=None,
                        help="write the result table to a CSV file")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress per-case progress lines")
    args = parser.parse_args(list(argv) if argv is not None else None)

    for name in args.benchmarks:
        spec(name)  # fail early on typos
    rows, cols = parse_size(args.size)
    for arch in args.archs:
        resolve_arch(arch, rows, cols)  # fail early, not one worker per case

    cases = build_arch_cases(args.benchmarks, args.size, args.archs,
                             args.timeout, approach=args.approach)
    progress = None if args.quiet else print
    runner = BatchRunner(jobs=args.jobs, cache_path=args.cache,
                         progress=progress)
    report = runner.run(cases)

    by_case = {
        (case.benchmark, case.arch): result
        for case, result in zip(cases, report.results)
    }
    table = Table(
        headers=["Benchmark"] + [str(a) for a in args.archs],
        title=f"II per fabric -- {args.size} arrays, "
              f"approach={args.approach} (non-numeric cell = status)",
    )
    for benchmark in args.benchmarks:
        table.add_row(
            benchmark,
            *[_cell(by_case.get((benchmark, arch))) for arch in args.archs],
        )
    print(table.render())
    print(report.summary())
    if args.csv:
        table.to_csv(args.csv)
        print(f"results written to {args.csv}")
    return 1 if report.errors else 0


if __name__ == "__main__":  # pragma: no cover - exercised via the CLI
    raise SystemExit(main())
