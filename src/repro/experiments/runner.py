"""Shared plumbing for the experiment drivers."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Optional, Sequence, Tuple, Union

from repro.arch.cgra import CGRA
from repro.arch.spec import resolve_arch
from repro.arch.topology import Topology
from repro.core.config import BaselineConfig, MapperConfig
from repro.core.mapper import MappingResult, MappingStatus, MonomorphismMapper
from repro.baseline.satmapit import SatMapItMapper
from repro.graphs.dfg import DFG
from repro.workloads.suite import load_benchmark

DEFAULT_SIZES: Tuple[str, ...] = ("2x2", "5x5", "10x10", "20x20")


def parse_size(size: str) -> Tuple[int, int]:
    """Parse a size label such as ``"5x5"``."""
    try:
        rows_text, cols_text = size.lower().split("x")
        rows, cols = int(rows_text), int(cols_text)
    except ValueError as exc:
        raise ValueError(f"invalid CGRA size {size!r}; expected e.g. '5x5'") from exc
    if rows < 1 or cols < 1:
        raise ValueError(f"invalid CGRA size {size!r}")
    return rows, cols


def build_cgra(size: str, topology: Topology = Topology.TORUS) -> CGRA:
    rows, cols = parse_size(size)
    return CGRA(rows, cols, topology=topology)


def build_cgra_from_arch(size: str, arch: Optional[str]) -> CGRA:
    """Build the fabric for one case: plain torus, preset, or spec file.

    ``arch`` is ``None`` (the paper's homogeneous torus at ``size``), a
    preset name (instantiated at ``size``), or a path to an arch-spec JSON
    file (whose own dimensions are authoritative).
    """
    if arch is None:
        return build_cgra(size)
    rows, cols = parse_size(size)
    return resolve_arch(arch, rows, cols).build()


@dataclass
class CaseResult:
    """One (benchmark, CGRA size, approach) measurement.

    Wall-clock fields are recorded for *every* terminal status -- including
    timeouts and failures -- so the reporting layer can see how long a
    failed case actually ran. Excluding timeouts from aggregates (the
    paper's convention) is the caller's job: pass ``None`` for
    non-successful cases into :func:`average`, as the drivers do.
    """

    benchmark: str
    cgra_size: str
    approach: str                     # "monomorphism" or "satmapit"
    status: str
    ii: Optional[int]
    mii: int
    time_phase_seconds: Optional[float]
    space_phase_seconds: Optional[float]
    total_seconds: Optional[float]
    schedules_tried: int = 0
    nodes: int = 0
    message: str = ""
    arch: Optional[str] = None        # preset name / spec path; None = torus
    opt_level: int = 0                # pre-mapping optimization level
    opt_passes: Optional[str] = None  # explicit pass list ("a,b,c"), if any
    nodes_opt: Optional[int] = None   # node count after optimization

    @property
    def succeeded(self) -> bool:
        return self.status == MappingStatus.SUCCESS.value

    @classmethod
    def from_mapping_result(
        cls,
        benchmark: str,
        cgra_size: str,
        approach: str,
        dfg: DFG,
        result: MappingResult,
        arch: Optional[str] = None,
        opt_level: int = 0,
        opt_passes: Optional[Sequence[str]] = None,
    ) -> "CaseResult":
        return cls(
            benchmark=benchmark,
            cgra_size=cgra_size,
            approach=approach,
            status=result.status.value,
            ii=result.ii,
            mii=result.mii,
            time_phase_seconds=result.time_phase_seconds,
            space_phase_seconds=result.space_phase_seconds,
            total_seconds=result.total_seconds,
            schedules_tried=result.schedules_tried,
            nodes=dfg.num_nodes,
            message=result.message,
            arch=arch,
            opt_level=opt_level,
            opt_passes=",".join(opt_passes) if opt_passes else None,
            nodes_opt=(result.opt.nodes_after
                       if result.opt is not None else None),
        )


def decoupled_config(
    timeout_seconds: float,
    opt_level: Union[int, str] = 0,
    opt_passes: Optional[Sequence[str]] = None,
) -> MapperConfig:
    """Mapper configuration used by the experiments."""
    return MapperConfig(
        time_timeout_seconds=timeout_seconds,
        space_timeout_seconds=timeout_seconds,
        total_timeout_seconds=timeout_seconds,
        opt_level=opt_level,
        opt_passes=tuple(opt_passes) if opt_passes else None,
    )


def baseline_config(
    timeout_seconds: float,
    opt_level: Union[int, str] = 0,
    opt_passes: Optional[Sequence[str]] = None,
) -> BaselineConfig:
    return BaselineConfig(
        timeout_seconds=timeout_seconds,
        total_timeout_seconds=timeout_seconds,
        opt_level=opt_level,
        opt_passes=tuple(opt_passes) if opt_passes else None,
    )


def run_decoupled_case(
    benchmark: str, size: str, timeout_seconds: float = 60.0,
    arch: Optional[str] = None,
    opt_level: Union[int, str] = 0,
    opt_passes: Optional[Sequence[str]] = None,
) -> CaseResult:
    """Run the decoupled mapper on one benchmark / CGRA size / fabric."""
    dfg = load_benchmark(benchmark)
    cgra = build_cgra_from_arch(size, arch)
    config = decoupled_config(timeout_seconds, opt_level, opt_passes)
    mapper = MonomorphismMapper(cgra, config)
    result = mapper.map(dfg)
    return CaseResult.from_mapping_result(
        benchmark, cgra.size_label, "monomorphism", dfg, result, arch=arch,
        opt_level=config.opt_level, opt_passes=opt_passes,
    )


def run_baseline_case(
    benchmark: str, size: str, timeout_seconds: float = 60.0,
    arch: Optional[str] = None,
    opt_level: Union[int, str] = 0,
    opt_passes: Optional[Sequence[str]] = None,
) -> CaseResult:
    """Run the SAT-MapIt-style baseline on one benchmark / CGRA size / fabric."""
    dfg = load_benchmark(benchmark)
    cgra = build_cgra_from_arch(size, arch)
    config = baseline_config(timeout_seconds, opt_level, opt_passes)
    mapper = SatMapItMapper(cgra, config)
    result = mapper.map(dfg)
    return CaseResult.from_mapping_result(
        benchmark, cgra.size_label, "satmapit", dfg, result, arch=arch,
        opt_level=config.opt_level, opt_passes=opt_passes,
    )


APPROACHES: Dict[str, str] = {
    "monomorphism": "monomorphism",
    "mono": "monomorphism",
    "decoupled": "monomorphism",
    "satmapit": "satmapit",
    "baseline": "satmapit",
}


def normalize_approach(approach: str) -> str:
    """Canonical approach name ('monomorphism' or 'satmapit')."""
    try:
        return APPROACHES[approach.lower()]
    except KeyError as exc:
        raise ValueError(
            f"unknown approach {approach!r}; expected one of {sorted(APPROACHES)}"
        ) from exc


def run_case(
    benchmark: str, size: str, approach: str, timeout_seconds: float = 60.0,
    arch: Optional[str] = None,
    opt_level: Union[int, str] = 0,
    opt_passes: Optional[Sequence[str]] = None,
) -> CaseResult:
    """Run one case of either approach (the batch engine's entry point)."""
    runner = (run_decoupled_case
              if normalize_approach(approach) == "monomorphism"
              else run_baseline_case)
    return runner(benchmark, size, timeout_seconds, arch=arch,
                  opt_level=opt_level, opt_passes=opt_passes)


def compilation_time_ratio(
    mono: CaseResult, baseline: CaseResult
) -> Optional[float]:
    """The paper's CTR column: baseline time over monomorphism time."""
    if not (mono.succeeded and baseline.succeeded):
        return None
    if not mono.total_seconds:
        return None
    return baseline.total_seconds / mono.total_seconds


def average(values: Iterable[Optional[float]]) -> Optional[float]:
    """Mean of the non-``None`` values (the paper excludes timeouts)."""
    concrete = [v for v in values if v is not None]
    if not concrete:
        return None
    return sum(concrete) / len(concrete)
