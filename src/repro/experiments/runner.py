"""Shared plumbing for the experiment drivers."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.arch.cgra import CGRA
from repro.arch.spec import resolve_arch
from repro.arch.topology import Topology
from repro.core.config import (
    BaselineConfig,
    HeuristicConfig,
    MapperConfig,
    PortfolioConfig,
)
from repro.core.engine import ENGINE_ALIASES, normalize_engine
from repro.core.mapper import MappingResult, MappingStatus, MonomorphismMapper
from repro.baseline.satmapit import SatMapItMapper
from repro.graphs.dfg import DFG
from repro.workloads.suite import load_benchmark

DEFAULT_SIZES: Tuple[str, ...] = ("2x2", "5x5", "10x10", "20x20")


def parse_size(size: str) -> Tuple[int, int]:
    """Parse a size label such as ``"5x5"``."""
    try:
        rows_text, cols_text = size.lower().split("x")
        rows, cols = int(rows_text), int(cols_text)
    except ValueError as exc:
        raise ValueError(f"invalid CGRA size {size!r}; expected e.g. '5x5'") from exc
    if rows < 1 or cols < 1:
        raise ValueError(f"invalid CGRA size {size!r}")
    return rows, cols


def build_cgra(size: str, topology: Topology = Topology.TORUS) -> CGRA:
    rows, cols = parse_size(size)
    return CGRA(rows, cols, topology=topology)


def build_cgra_from_arch(size: str, arch: Optional[str]) -> CGRA:
    """Build the fabric for one case: plain torus, preset, or spec file.

    ``arch`` is ``None`` (the paper's homogeneous torus at ``size``), a
    preset name (instantiated at ``size``), or a path to an arch-spec JSON
    file (whose own dimensions are authoritative).
    """
    if arch is None:
        return build_cgra(size)
    rows, cols = parse_size(size)
    return resolve_arch(arch, rows, cols).build()


@dataclass
class CaseResult:
    """One (benchmark, CGRA size, approach) measurement.

    Wall-clock fields are recorded for *every* terminal status -- including
    timeouts and failures -- so the reporting layer can see how long a
    failed case actually ran. Excluding timeouts from aggregates (the
    paper's convention) is the caller's job: pass ``None`` for
    non-successful cases into :func:`average`, as the drivers do.
    """

    benchmark: str
    cgra_size: str
    approach: str                     # canonical engine name
    status: str
    ii: Optional[int]
    mii: int
    time_phase_seconds: Optional[float]
    space_phase_seconds: Optional[float]
    total_seconds: Optional[float]
    schedules_tried: int = 0
    nodes: int = 0
    message: str = ""
    arch: Optional[str] = None        # preset name / spec path; None = torus
    opt_level: int = 0                # pre-mapping optimization level
    opt_passes: Optional[str] = None  # explicit pass list ("a,b,c"), if any
    nodes_opt: Optional[int] = None   # node count after optimization
    solver_backend: Optional[str] = None  # SAT kernel; None = default arena
    seed: Optional[int] = None        # heuristic/portfolio RNG seed, if any
    iis_tried: int = 0                # IIs attempted before the outcome
    #: per-II attribution: [{"ii", "time", "space", "schedules"}, ...]
    per_ii: Optional[List[Dict[str, object]]] = None
    #: portfolio only: per-engine outcome records, and the winning engine
    portfolio: Optional[List[Dict[str, object]]] = None
    winner: Optional[str] = None

    @property
    def succeeded(self) -> bool:
        return self.status == MappingStatus.SUCCESS.value

    @classmethod
    def from_mapping_result(
        cls,
        benchmark: str,
        cgra_size: str,
        approach: str,
        dfg: DFG,
        result: MappingResult,
        arch: Optional[str] = None,
        opt_level: int = 0,
        opt_passes: Optional[Sequence[str]] = None,
        solver_backend: Optional[str] = None,
        seed: Optional[int] = None,
    ) -> "CaseResult":
        stats = result.stats or {}
        return cls(
            benchmark=benchmark,
            cgra_size=cgra_size,
            approach=approach,
            status=result.status.value,
            ii=result.ii,
            mii=result.mii,
            time_phase_seconds=result.time_phase_seconds,
            space_phase_seconds=result.space_phase_seconds,
            total_seconds=result.total_seconds,
            schedules_tried=result.schedules_tried,
            nodes=dfg.num_nodes,
            message=result.message,
            arch=arch,
            opt_level=opt_level,
            opt_passes=",".join(opt_passes) if opt_passes else None,
            nodes_opt=(result.opt.nodes_after
                       if result.opt is not None else None),
            solver_backend=solver_backend,
            seed=seed,
            iis_tried=result.iis_tried,
            per_ii=stats.get("per_ii"),
            portfolio=stats.get("portfolio"),
            winner=stats.get("winner"),
        )


def decoupled_config(
    timeout_seconds: float,
    opt_level: Union[int, str] = 0,
    opt_passes: Optional[Sequence[str]] = None,
    solver_backend: Optional[str] = None,
) -> MapperConfig:
    """Mapper configuration used by the experiments."""
    return MapperConfig(
        time_timeout_seconds=timeout_seconds,
        space_timeout_seconds=timeout_seconds,
        total_timeout_seconds=timeout_seconds,
        opt_level=opt_level,
        opt_passes=tuple(opt_passes) if opt_passes else None,
        solver_backend=solver_backend or "arena",
    )


def baseline_config(
    timeout_seconds: float,
    opt_level: Union[int, str] = 0,
    opt_passes: Optional[Sequence[str]] = None,
    solver_backend: Optional[str] = None,
) -> BaselineConfig:
    return BaselineConfig(
        timeout_seconds=timeout_seconds,
        total_timeout_seconds=timeout_seconds,
        opt_level=opt_level,
        opt_passes=tuple(opt_passes) if opt_passes else None,
        solver_backend=solver_backend or "arena",
    )


def run_decoupled_case(
    benchmark: str, size: str, timeout_seconds: float = 60.0,
    arch: Optional[str] = None,
    opt_level: Union[int, str] = 0,
    opt_passes: Optional[Sequence[str]] = None,
    solver_backend: Optional[str] = None,
) -> CaseResult:
    """Run the decoupled mapper on one benchmark / CGRA size / fabric."""
    dfg = load_benchmark(benchmark)
    cgra = build_cgra_from_arch(size, arch)
    config = decoupled_config(timeout_seconds, opt_level, opt_passes,
                              solver_backend)
    mapper = MonomorphismMapper(cgra, config)
    result = mapper.map(dfg)
    return CaseResult.from_mapping_result(
        benchmark, cgra.size_label, "monomorphism", dfg, result, arch=arch,
        opt_level=config.opt_level, opt_passes=opt_passes,
        solver_backend=solver_backend,
    )


def run_baseline_case(
    benchmark: str, size: str, timeout_seconds: float = 60.0,
    arch: Optional[str] = None,
    opt_level: Union[int, str] = 0,
    opt_passes: Optional[Sequence[str]] = None,
    solver_backend: Optional[str] = None,
) -> CaseResult:
    """Run the SAT-MapIt-style baseline on one benchmark / CGRA size / fabric."""
    dfg = load_benchmark(benchmark)
    cgra = build_cgra_from_arch(size, arch)
    config = baseline_config(timeout_seconds, opt_level, opt_passes,
                             solver_backend)
    mapper = SatMapItMapper(cgra, config)
    result = mapper.map(dfg)
    return CaseResult.from_mapping_result(
        benchmark, cgra.size_label, "satmapit", dfg, result, arch=arch,
        opt_level=config.opt_level, opt_passes=opt_passes,
        solver_backend=solver_backend,
    )


def run_heuristic_case(
    benchmark: str, size: str, timeout_seconds: float = 60.0,
    arch: Optional[str] = None,
    opt_level: Union[int, str] = 0,
    opt_passes: Optional[Sequence[str]] = None,
    seed: Optional[int] = None,
) -> CaseResult:
    """Run the stochastic anytime engine on one case."""
    from repro.heuristic.engine import HeuristicMapper, resolve_seed

    dfg = load_benchmark(benchmark)
    cgra = build_cgra_from_arch(size, arch)
    config = HeuristicConfig(
        budget_seconds=timeout_seconds,
        seed=seed,
        opt_level=opt_level,
        opt_passes=tuple(opt_passes) if opt_passes else None,
    )
    result = HeuristicMapper(cgra, config).map(dfg)
    return CaseResult.from_mapping_result(
        benchmark, cgra.size_label, "heuristic", dfg, result, arch=arch,
        opt_level=config.opt_level, opt_passes=opt_passes,
        seed=resolve_seed(seed),
    )


def run_portfolio_case(
    benchmark: str, size: str, timeout_seconds: float = 60.0,
    arch: Optional[str] = None,
    opt_level: Union[int, str] = 0,
    opt_passes: Optional[Sequence[str]] = None,
    seed: Optional[int] = None,
    solver_backend: Optional[str] = None,
) -> CaseResult:
    """Race the engine portfolio on one case (sequential inside the worker:
    the batch engine already parallelises across cases)."""
    from repro.heuristic.engine import resolve_seed
    from repro.heuristic.portfolio import PortfolioMapper

    dfg = load_benchmark(benchmark)
    cgra = build_cgra_from_arch(size, arch)
    config = PortfolioConfig(
        budget_seconds=timeout_seconds,
        seed=seed,
        opt_level=opt_level,
        opt_passes=tuple(opt_passes) if opt_passes else None,
        solver_backend=solver_backend or "arena",
    )
    result = PortfolioMapper(cgra, config).map(dfg)
    return CaseResult.from_mapping_result(
        benchmark, cgra.size_label, "portfolio", dfg, result, arch=arch,
        opt_level=config.opt_level, opt_passes=opt_passes,
        solver_backend=solver_backend, seed=resolve_seed(seed),
    )


#: every accepted approach spelling -> canonical engine name (kept as the
#: historical module-level alias map; the registry lives in repro.core.engine)
APPROACHES: Dict[str, str] = dict(ENGINE_ALIASES)


def normalize_approach(approach: str) -> str:
    """Canonical approach name (one of :data:`repro.core.engine.ENGINE_NAMES`)."""
    try:
        return normalize_engine(approach)
    except ValueError as exc:
        raise ValueError(
            f"unknown approach {approach!r}; expected one of {sorted(APPROACHES)}"
        ) from exc


def run_case(
    benchmark: str, size: str, approach: str, timeout_seconds: float = 60.0,
    arch: Optional[str] = None,
    opt_level: Union[int, str] = 0,
    opt_passes: Optional[Sequence[str]] = None,
    solver_backend: Optional[str] = None,
    seed: Optional[int] = None,
) -> CaseResult:
    """Run one case of any approach (the batch engine's entry point)."""
    canonical = normalize_approach(approach)
    if canonical == "monomorphism":
        return run_decoupled_case(benchmark, size, timeout_seconds, arch=arch,
                                  opt_level=opt_level, opt_passes=opt_passes,
                                  solver_backend=solver_backend)
    if canonical == "satmapit":
        return run_baseline_case(benchmark, size, timeout_seconds, arch=arch,
                                 opt_level=opt_level, opt_passes=opt_passes,
                                 solver_backend=solver_backend)
    if canonical == "heuristic":
        return run_heuristic_case(benchmark, size, timeout_seconds, arch=arch,
                                  opt_level=opt_level, opt_passes=opt_passes,
                                  seed=seed)
    return run_portfolio_case(benchmark, size, timeout_seconds, arch=arch,
                              opt_level=opt_level, opt_passes=opt_passes,
                              seed=seed, solver_backend=solver_backend)


def compilation_time_ratio(
    mono: CaseResult, baseline: CaseResult
) -> Optional[float]:
    """The paper's CTR column: baseline time over monomorphism time."""
    if not (mono.succeeded and baseline.succeeded):
        return None
    if not mono.total_seconds:
        return None
    return baseline.total_seconds / mono.total_seconds


def average(values: Iterable[Optional[float]]) -> Optional[float]:
    """Mean of the non-``None`` values (the paper excludes timeouts)."""
    concrete = [v for v in values if v is not None]
    if not concrete:
        return None
    return sum(concrete) / len(concrete)
