"""Reproduce paper Fig. 5: compilation time vs CGRA size for ``aes``.

The paper's figure shows that the coupled SAT-MapIt compilation time grows
steeply with the CGRA size while the decoupled monomorphism mapper stays
flat. This driver measures both mappers on the requested sizes, prints an
ASCII chart (log-scale y axis, like the paper) and the underlying numbers
next to the paper's values.
"""

from __future__ import annotations

import argparse
from typing import Dict, List, Optional, Sequence

from repro.experiments.paper_data import PAPER_FIG5_AES, PAPER_TABLE3
from repro.experiments.runner import (
    DEFAULT_SIZES,
    run_baseline_case,
    run_decoupled_case,
)
from repro.reporting.figures import Series, render_line_chart, series_to_csv
from repro.reporting.tables import Table, format_seconds


def run_fig5(
    benchmark: str = "aes",
    sizes: Sequence[str] = DEFAULT_SIZES,
    timeout_seconds: float = 60.0,
    run_baseline: bool = True,
) -> Dict[str, object]:
    """Collect the Fig. 5 data points."""
    measured_mono = Series(label="monomorphism (measured)")
    measured_base = Series(label="SAT-MapIt baseline (measured)")
    paper_mono = Series(label="monomorphism (paper)")
    paper_base = Series(label="SAT-MapIt (paper)")
    rows: List[Dict[str, object]] = []
    for size in sizes:
        mono = run_decoupled_case(benchmark, size, timeout_seconds)
        measured_mono.add(size, mono.total_seconds)
        baseline = None
        if run_baseline:
            baseline = run_baseline_case(benchmark, size, timeout_seconds)
            measured_base.add(size, baseline.total_seconds)
        else:
            measured_base.add(size, None)
        paper_entry = PAPER_TABLE3.get(size, {}).get(benchmark)
        paper_mono.add(size, paper_entry.mono_total if paper_entry else None)
        paper_base.add(size, paper_entry.satmapit_time if paper_entry else None)
        rows.append({"size": size, "mono": mono, "baseline": baseline,
                     "paper": paper_entry})
    return {
        "benchmark": benchmark,
        "series": [measured_mono, measured_base, paper_mono, paper_base],
        "rows": rows,
    }


def fig5_table(data: Dict[str, object]) -> Table:
    table = Table(
        headers=["CGRA", "mono (s)", "baseline (s)",
                 "paper mono (s)", "paper SAT-MapIt (s)", "II", "paper II"],
        title=f"Fig. 5 -- compilation time vs CGRA size for "
              f"{data['benchmark']!r}",
    )
    for row in data["rows"]:
        mono = row["mono"]
        baseline = row["baseline"]
        paper = row["paper"]
        table.add_row(
            row["size"],
            format_seconds(mono.total_seconds),
            format_seconds(baseline.total_seconds) if baseline is not None else "skipped",
            format_seconds(paper.mono_total) if paper else "-",
            format_seconds(paper.satmapit_time) if paper else "-",
            mono.ii,
            paper.ii if paper else None,
        )
    return table


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--benchmark", default="aes")
    parser.add_argument("--sizes", nargs="+", default=list(DEFAULT_SIZES))
    parser.add_argument("--timeout", type=float, default=60.0)
    parser.add_argument("--no-baseline", action="store_true")
    parser.add_argument("--csv", type=str, default=None)
    args = parser.parse_args(argv)

    data = run_fig5(
        benchmark=args.benchmark,
        sizes=args.sizes,
        timeout_seconds=args.timeout,
        run_baseline=not args.no_baseline,
    )
    print(fig5_table(data).render())
    print()
    print(render_line_chart(
        data["series"],
        title=f"Fig. 5 -- compilation time (s) vs CGRA size, "
              f"{args.benchmark} benchmark",
    ))
    if args.csv:
        series_to_csv(data["series"], args.csv)
        print(f"\nseries written to {args.csv}")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CLI
    raise SystemExit(main())
