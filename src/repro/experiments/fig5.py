"""Reproduce paper Fig. 5: compilation time vs CGRA size for ``aes``.

The paper's figure shows that the coupled SAT-MapIt compilation time grows
steeply with the CGRA size while the decoupled monomorphism mapper stays
flat. This driver measures both mappers on the requested sizes, prints an
ASCII chart (log-scale y axis, like the paper) and the underlying numbers
next to the paper's values.
"""

from __future__ import annotations

import argparse
import os
from typing import Dict, List, Optional, Sequence, Tuple

from repro.experiments.paper_data import PAPER_TABLE3
from repro.experiments.runner import (
    CaseResult,
    DEFAULT_SIZES,
    run_baseline_case,
    run_decoupled_case,
)
from repro.reporting.figures import Series, render_line_chart, series_to_csv
from repro.reporting.tables import Table, format_seconds


def run_fig5(
    benchmark: str = "aes",
    sizes: Sequence[str] = DEFAULT_SIZES,
    timeout_seconds: float = 60.0,
    run_baseline: bool = True,
    results: Optional[Dict[Tuple[str, str, str], CaseResult]] = None,
    opt_level: int = 0,
) -> Dict[str, object]:
    """Collect the Fig. 5 data points.

    ``results`` may hold precomputed cases keyed by
    ``(benchmark, size, approach)`` -- the batch engine fills it when the
    driver runs with ``--jobs``/``--cache``; missing cases run inline.
    """

    def case_for(name: str, size: str, approach: str) -> CaseResult:
        if results is not None:
            hit = results.get((name, size, approach))
            if hit is not None:
                return hit
        if approach == "monomorphism":
            return run_decoupled_case(name, size, timeout_seconds,
                                      opt_level=opt_level)
        return run_baseline_case(name, size, timeout_seconds,
                                 opt_level=opt_level)

    measured_mono = Series(label="monomorphism (measured)")
    measured_base = Series(label="SAT-MapIt baseline (measured)")
    paper_mono = Series(label="monomorphism (paper)")
    paper_base = Series(label="SAT-MapIt (paper)")
    rows: List[Dict[str, object]] = []
    for size in sizes:
        mono = case_for(benchmark, size, "monomorphism")
        # timeouts now carry their elapsed time; the chart still excludes them
        measured_mono.add(size, mono.total_seconds if mono.succeeded else None)
        baseline = None
        if run_baseline:
            baseline = case_for(benchmark, size, "satmapit")
            measured_base.add(
                size, baseline.total_seconds if baseline.succeeded else None
            )
        else:
            measured_base.add(size, None)
        paper_entry = PAPER_TABLE3.get(size, {}).get(benchmark)
        paper_mono.add(size, paper_entry.mono_total if paper_entry else None)
        paper_base.add(size, paper_entry.satmapit_time if paper_entry else None)
        rows.append({"size": size, "mono": mono, "baseline": baseline,
                     "paper": paper_entry})
    return {
        "benchmark": benchmark,
        "series": [measured_mono, measured_base, paper_mono, paper_base],
        "rows": rows,
    }


def fig5_table(data: Dict[str, object]) -> Table:
    table = Table(
        headers=["CGRA", "mono (s)", "baseline (s)",
                 "paper mono (s)", "paper SAT-MapIt (s)", "II", "paper II"],
        title=f"Fig. 5 -- compilation time vs CGRA size for "
              f"{data['benchmark']!r}",
    )
    for row in data["rows"]:
        mono = row["mono"]
        baseline = row["baseline"]
        paper = row["paper"]
        table.add_row(
            row["size"],
            format_seconds(mono.total_seconds) if mono.succeeded else "TO",
            ("skipped" if baseline is None
             else format_seconds(baseline.total_seconds)
             if baseline.succeeded else "TO"),
            format_seconds(paper.mono_total) if paper else "-",
            format_seconds(paper.satmapit_time) if paper else "-",
            mono.ii,
            paper.ii if paper else None,
        )
    return table


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--benchmark", default="aes")
    parser.add_argument("--sizes", nargs="+", default=list(DEFAULT_SIZES))
    parser.add_argument("--timeout", type=float, default=60.0)
    parser.add_argument("--no-baseline", action="store_true")
    parser.add_argument("--csv", type=str, default=None)
    parser.add_argument("--jobs", type=int, default=os.cpu_count() or 1,
                        help="run the cases through the parallel batch "
                             "engine with this many workers "
                             "(default: all CPUs)")
    parser.add_argument("--cache", type=str, default=None,
                        help="JSONL result cache shared with 'repro-map "
                             "sweep'")
    parser.add_argument("--opt-level", default="O0",
                        help="pre-mapping optimization level for both "
                             "mappers (O0..O2, default O0)")
    args = parser.parse_args(argv)
    from repro.opt.pipeline import parse_opt_level
    opt_level = parse_opt_level(args.opt_level)

    results = None
    if args.jobs > 1 or args.cache:
        from repro.experiments.batch import (
            BatchRunner, build_cases, results_by_case,
        )
        approaches = ["monomorphism"]
        if not args.no_baseline:
            approaches.append("satmapit")
        cases = build_cases([args.benchmark], args.sizes, approaches,
                            args.timeout, opt_level=opt_level)
        report = BatchRunner(jobs=max(1, args.jobs),
                             cache_path=args.cache).run(cases)
        results = results_by_case(cases, report)
        print(report.summary() + "\n")

    data = run_fig5(
        benchmark=args.benchmark,
        sizes=args.sizes,
        timeout_seconds=args.timeout,
        run_baseline=not args.no_baseline,
        results=results,
        opt_level=opt_level,
    )
    print(fig5_table(data).render())
    print()
    print(render_line_chart(
        data["series"],
        title=f"Fig. 5 -- compilation time (s) vs CGRA size, "
              f"{args.benchmark} benchmark",
    ))
    if args.csv:
        series_to_csv(data["series"], args.csv)
        print(f"\nseries written to {args.csv}")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CLI
    raise SystemExit(main())
