"""Opt-level sweep: II and compile-time deltas per benchmark.

Maps every requested benchmark at every requested optimization level
(``O0`` = the paper's unoptimized flow) on one array size and prints, side
by side, the post-optimization node count, the achieved II and the total
compilation time per level, plus the II delta and compile-time speedup of
the highest level over the lowest. This is the scenario axis the
``repro.opt`` subsystem opens: the same kernels, the same mapper, different
amounts of compiler in front of it.

Runs through the :class:`~repro.experiments.batch.BatchRunner`, so
``--jobs`` parallelises across (benchmark, level) cases and ``--cache``
makes re-runs free (opt configuration is part of the cache key).

Usage::

    repro-map optsweep --benchmarks aes crc32 sha2 --size 4x4 \
        --opt-levels O0 O1 O2 --jobs 4 --cache opt-results.jsonl
"""

from __future__ import annotations

import argparse
import json
from typing import Dict, List, Optional, Sequence

from repro.core.engine import engine_choices
from repro.experiments.batch import BatchCase, BatchRunner
from repro.experiments.runner import parse_size
from repro.opt.pipeline import opt_level_label, parse_opt_level
from repro.reporting.tables import Table, format_seconds
from repro.workloads.suite import benchmark_names, spec

DEFAULT_LEVELS: Sequence[str] = ("O0", "O2")


def build_opt_cases(
    benchmarks: Sequence[str],
    size: str,
    levels: Sequence[int],
    timeout_seconds: float,
    approach: str = "monomorphism",
    arch: Optional[str] = None,
) -> List[BatchCase]:
    """The (benchmark x opt level) grid, ordered benchmark -> level."""
    return [
        BatchCase(benchmark=benchmark, size=size, approach=approach,
                  timeout_seconds=timeout_seconds, arch=arch,
                  opt_level=level)
        for benchmark in benchmarks
        for level in levels
    ]


def _row(benchmark: str, levels: Sequence[int],
         by_case: Dict[tuple, object]) -> Dict[str, object]:
    per_level = {level: by_case.get((benchmark, level)) for level in levels}
    lowest = per_level[levels[0]]
    highest = per_level[levels[-1]]
    ii_delta = None
    speedup = None
    if lowest is not None and highest is not None \
            and lowest.succeeded and highest.succeeded:
        ii_delta = lowest.ii - highest.ii
        if highest.total_seconds:
            speedup = lowest.total_seconds / highest.total_seconds
    return {"benchmark": benchmark, "per_level": per_level,
            "ii_delta": ii_delta, "speedup": speedup}


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-map optsweep",
        description="Compare II and compile time across pre-mapping "
                    "optimization levels",
    )
    parser.add_argument("--benchmarks", nargs="+", default=benchmark_names(),
                        help="benchmark subset (default: all 17)")
    parser.add_argument("--size", default="4x4",
                        help="CGRA array size (default 4x4)")
    parser.add_argument("--opt-levels", nargs="+",
                        default=list(DEFAULT_LEVELS),
                        help="levels to compare, e.g. O0 O1 O2 "
                             f"(default: {' '.join(DEFAULT_LEVELS)})")
    parser.add_argument("--approach", default="monomorphism",
                        choices=engine_choices(),
                        help="mapper approach (default: monomorphism)")
    parser.add_argument("--arch", default=None,
                        help="architecture preset or arch-spec JSON path")
    parser.add_argument("--timeout", type=float, default=60.0,
                        help="per-case soft timeout in seconds")
    parser.add_argument("--jobs", type=int, default=1,
                        help="concurrent worker processes")
    parser.add_argument("--cache", default=None,
                        help="JSONL result cache shared with `sweep`")
    parser.add_argument("--csv", default=None,
                        help="write the result table to a CSV file")
    parser.add_argument("--json", default=None,
                        help="write per-benchmark results to a JSON file")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress per-case progress lines")
    args = parser.parse_args(list(argv) if argv is not None else None)

    for name in args.benchmarks:
        spec(name)  # fail early on typos
    parse_size(args.size)
    levels = [parse_opt_level(level) for level in args.opt_levels]
    if len(set(levels)) != len(levels):
        raise SystemExit("duplicate --opt-levels")

    cases = build_opt_cases(args.benchmarks, args.size, levels, args.timeout,
                            approach=args.approach, arch=args.arch)
    progress = None if args.quiet else print
    runner = BatchRunner(jobs=args.jobs, cache_path=args.cache,
                         progress=progress)
    report = runner.run(cases)
    by_case = {
        (case.benchmark, case.opt_level): result
        for case, result in zip(cases, report.results)
    }

    labels = [opt_level_label(level) for level in levels]
    headers = ["Benchmark", "Nodes"]
    for label in labels:
        headers += [f"n@{label}", f"II@{label}", f"t@{label}"]
    headers += ["dII", "speedup"]
    table = Table(
        headers=headers,
        title=f"Opt-level sweep -- {args.size} arrays, "
              f"approach={args.approach}"
              + (f", arch={args.arch}" if args.arch else ""),
    )
    rows = [_row(benchmark, levels, by_case)
            for benchmark in args.benchmarks]
    for row in rows:
        cells: List[object] = [row["benchmark"]]
        base = row["per_level"][levels[0]]
        cells.append(base.nodes if base is not None else None)
        for level in levels:
            result = row["per_level"][level]
            if result is None:
                cells += [None, "?", "-"]
            else:
                cells += [
                    result.nodes_opt if result.nodes_opt is not None
                    else result.nodes,
                    result.ii if result.succeeded else result.status,
                    format_seconds(result.total_seconds),
                ]
        cells.append(row["ii_delta"])
        cells.append(f"{row['speedup']:.2f}x"
                     if row["speedup"] is not None else "-")
        table.add_row(*cells)
    print(table.render())
    print(report.summary())

    improved = sum(
        1 for row in rows
        if (row["ii_delta"] or 0) > 0 or (row["speedup"] or 0) > 1.0
    )
    print(f"{improved}/{len(rows)} benchmark(s) improved II or compile "
          f"time at {labels[-1]} vs {labels[0]}")

    if args.csv:
        table.to_csv(args.csv)
        print(f"results written to {args.csv}")
    if args.json:
        payload = []
        for row in rows:
            entry: Dict[str, object] = {"benchmark": row["benchmark"],
                                        "size": args.size,
                                        "approach": args.approach,
                                        "ii_delta": row["ii_delta"],
                                        "speedup": row["speedup"]}
            for level, label in zip(levels, labels):
                result = row["per_level"][level]
                if result is None:
                    continue
                entry[label] = {
                    "status": result.status,
                    "ii": result.ii,
                    "mii": result.mii,
                    "nodes": result.nodes,
                    "nodes_opt": result.nodes_opt,
                    "total_seconds": result.total_seconds,
                }
            payload.append(entry)
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2)
        print(f"results written to {args.json}")
    return 1 if report.errors else 0


if __name__ == "__main__":  # pragma: no cover - exercised via the CLI
    raise SystemExit(main())
