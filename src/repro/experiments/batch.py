"""Parallel batch execution of experiment cases.

The paper's evaluation is a large grid -- 17 benchmarks x 4 CGRA sizes x 2
approaches -- and the seed drivers walked it strictly serially. This module
provides :class:`BatchRunner`, the engine behind ``repro-map sweep`` and the
``--jobs`` / ``--cache`` options of the Table III / Fig. 5 drivers:

* a ``multiprocessing`` worker pool (one process per in-flight case, at
  most ``jobs`` concurrent) so independent cases use all cores;
* a *hard* per-case wall-clock timeout: a worker that overruns (the
  mapper's own soft timeout covers solving, not pathological encoding) is
  terminated and recorded with status ``"hard_timeout"`` and its real
  elapsed time;
* deterministic result ordering: results come back in the order the cases
  were submitted, whatever the completion order, so ``--jobs 4`` output is
  byte-identical to the serial run (the solver itself is deterministic;
  only cases racing their wall-clock timeout can differ between runs,
  which is true of any timeout-bounded experiment, serial or not);
* a JSONL result cache keyed by a hash of the case configuration
  (benchmark, size, approach, timeout, architecture, opt level / pass
  list, solver backend, and -- for the stochastic engines -- the resolved
  RNG seed; extend :meth:`BatchCase.cache_key` before plumbing any further
  mapper knob through a case, or stale entries will be served across
  configurations), so re-runs skip already-solved cases and interrupted
  sweeps resume for free;
* progress reporting through a pluggable callback.

The cache's key derivation and persistence live in
:mod:`repro.service.store` (they are the same content-addressed store the
compile service serves from); this module keeps the flat single-file
``.jsonl`` layout for compatibility with existing caches.
"""

from __future__ import annotations

import dataclasses
import multiprocessing
import os
import time
from collections import deque
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.workers import reap
from repro.experiments.runner import CaseResult, normalize_approach, run_case
from repro.obs import logjson, metrics
from repro.obs import trace as obs_trace
from repro.service.store import ResultStore, content_key, file_content_hash

#: extra wall-clock grace on top of a case's soft timeout before the worker
#: process is terminated (encoding and validation time are part of a case).
DEFAULT_KILL_GRACE_SECONDS = 30.0

HARD_TIMEOUT_STATUS = "hard_timeout"
ERROR_STATUS = "error"

#: solver backends whose results are bit-identical to the arena kernel
#: (the native tier family); they share the arena cache key
ARENA_IDENTICAL_BACKENDS = frozenset({"native", "native-c", "numpy"})


@dataclass(frozen=True)
class BatchCase:
    """One (benchmark, CGRA size, approach, architecture, opt) work item."""

    benchmark: str
    size: str
    approach: str
    timeout_seconds: float = 60.0
    #: architecture preset name or arch-spec JSON path; ``None`` is the
    #: paper's homogeneous torus at ``size``
    arch: Optional[str] = None
    #: pre-mapping optimization level (0 = the paper's unoptimized flow)
    opt_level: int = 0
    #: explicit pass list overriding the level's schedule, if any
    opt_passes: Optional[Tuple[str, ...]] = None
    #: SAT kernel behind the exact engines; ``None`` is the default arena
    #: kernel (a scenario axis: ``--solver-backend`` on ``repro-map sweep``)
    solver_backend: Optional[str] = None
    #: RNG seed of the stochastic engines; resolved eagerly (explicit >
    #: ``REPRO_PROPERTY_SEED`` > built-in default) for heuristic/portfolio
    #: cases so the effective seed -- not the spelling -- keys the cache
    seed: Optional[int] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "approach", normalize_approach(self.approach))
        # normalize eagerly so equal configurations always share a cache
        # key ("O2", "2" and 2 are one configuration, lists become tuples)
        from repro.opt.pipeline import parse_opt_level

        object.__setattr__(self, "opt_level", parse_opt_level(self.opt_level))
        if self.opt_passes is not None:
            object.__setattr__(self, "opt_passes", tuple(self.opt_passes))
        if self.solver_backend == "arena":
            # the default kernel: one configuration, one cache key,
            # whether spelled out or omitted
            object.__setattr__(self, "solver_backend", None)
        if self.approach == "heuristic":
            # the heuristic engine never touches a SAT kernel; a backend
            # must not fragment its cache keys (the portfolio keeps it:
            # its exact member engines do consume the kernel choice)
            object.__setattr__(self, "solver_backend", None)
        if self.approach in ("heuristic", "portfolio"):
            from repro.heuristic.engine import resolve_seed

            object.__setattr__(self, "seed", resolve_seed(self.seed))
        elif self.seed is not None:
            # the exact engines are deterministic; a seed is not part of
            # their configuration and must not fragment their cache keys
            object.__setattr__(self, "seed", None)

    def cache_key(self) -> str:
        """Stable digest of everything that determines the result.

        The digest is :func:`repro.service.store.content_key` of the
        configuration record below (see that module for the derivation
        contract). Mapper-affecting knobs (``arch``, ``opt_level``,
        ``opt_passes``) join the digest only when set, so caches written
        before each axis existed keep hitting -- but any non-default value
        content-hashes into the key, and a stale entry can never be
        replayed across configurations. A spec *file* is keyed by its
        content hash -- editing the fabric invalidates its entries. Extend
        this method before plumbing any further mapper knob through a
        case.
        """
        record: Dict[str, object] = {
            "benchmark": self.benchmark,
            "size": self.size,
            "approach": self.approach,
            "timeout_seconds": self.timeout_seconds,
        }
        if self.arch is not None:
            record["arch"] = self.arch
            if self.arch.endswith(".json") and os.path.exists(self.arch):
                record["arch_sha"] = file_content_hash(self.arch)
        if self.opt_level:
            record["opt_level"] = self.opt_level
        if self.opt_passes:
            record["opt_passes"] = list(self.opt_passes)
        if (
            self.solver_backend is not None
            and self.solver_backend not in ARENA_IDENTICAL_BACKENDS
        ):
            # the native tiers are bit-identical to the arena kernel
            # (proven by the differential suite), so they share its cache
            # key: a sweep under "native" may replay arena results and
            # vice versa. Only genuinely different kernels ("reference")
            # fragment the cache.
            record["solver_backend"] = self.solver_backend
        if self.seed is not None:
            record["seed"] = self.seed
        return content_key(record)

    def label(self) -> str:
        base = f"{self.benchmark}/{self.size}/{self.approach}"
        if self.arch is not None:
            base = f"{base}/{self.arch}"
        if self.opt_passes:
            base = f"{base}/passes={','.join(self.opt_passes)}"
        elif self.opt_level:
            base = f"{base}/O{self.opt_level}"
        if self.solver_backend is not None:
            base = f"{base}/{self.solver_backend}"
        if self.seed is not None:
            base = f"{base}/seed={self.seed}"
        return base


@dataclass
class BatchReport:
    """Outcome of one :meth:`BatchRunner.run` call."""

    results: List[CaseResult]
    executed: int = 0
    cache_hits: int = 0
    hard_timeouts: int = 0
    errors: int = 0
    elapsed_seconds: float = 0.0

    @property
    def succeeded(self) -> int:
        return sum(1 for r in self.results if r.succeeded)

    def summary(self) -> str:
        return (
            f"{len(self.results)} case(s): {self.succeeded} succeeded, "
            f"{self.executed} executed, {self.cache_hits} from cache, "
            f"{self.hard_timeouts} hard timeout(s), {self.errors} error(s) "
            f"in {self.elapsed_seconds:.1f}s"
        )


def _worker_main(case_payload: Dict[str, object], connection,
                 traced: bool = False) -> None:
    """Child-process entry point: run one case, ship the result back.

    With ``traced`` set (tracing was enabled in the parent), the child
    records its own span buffer and ships a snapshot back as a third
    tuple element; the parent merges it under the span that spawned the
    case, re-anchored via the snapshot's wall-clock epoch.
    """
    try:
        if traced:
            # shed the fork-inherited buffer and open-span stack so this
            # child's roots re-parent cleanly when the parent ingests
            obs_trace.reset()
            obs_trace.enable()
        case = BatchCase(**case_payload)
        result = run_case(
            case.benchmark, case.size, case.approach, case.timeout_seconds,
            arch=case.arch, opt_level=case.opt_level,
            opt_passes=case.opt_passes,
            solver_backend=case.solver_backend, seed=case.seed,
        )
        if traced:
            connection.send(
                ("ok", dataclasses.asdict(result), obs_trace.snapshot())
            )
        else:
            connection.send(("ok", dataclasses.asdict(result)))
    except BaseException as exc:  # noqa: BLE001 - report, parent decides
        try:
            connection.send(("error", repr(exc)))
        except (BrokenPipeError, OSError):
            pass
    finally:
        connection.close()


@dataclass
class _Running:
    process: multiprocessing.Process
    connection: object
    case: BatchCase
    key: str
    started: float


class BatchRunner:
    """Run a batch of cases across worker processes, cached and in order."""

    def __init__(
        self,
        jobs: int = 1,
        cache_path: Optional[str] = None,
        kill_grace_seconds: float = DEFAULT_KILL_GRACE_SECONDS,
        hard_timeout_seconds: Optional[float] = None,
        progress: Optional[Callable[[str], None]] = None,
        poll_interval: float = 0.02,
    ) -> None:
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        self.jobs = jobs
        self.cache_path = cache_path
        self.kill_grace_seconds = kill_grace_seconds
        self.hard_timeout_seconds = hard_timeout_seconds
        self.progress = progress
        self.poll_interval = poll_interval
        self._context = multiprocessing.get_context()

    # ------------------------------------------------------------------ #
    # Cache
    # ------------------------------------------------------------------ #
    def _open_store(self, num_cases: int) -> Optional[ResultStore]:
        """The content-addressed store behind ``cache_path``, if any.

        The store's header (job-count provenance) is written lazily on
        the first actual append, so a run served entirely from cache --
        or a store opened by a read-only client -- leaves the file
        byte-identical.
        """
        if not self.cache_path:
            return None
        return ResultStore(self.cache_path, header={
            "jobs": self.jobs,
            "cases": num_cases,
            "hard_timeout_seconds": self.hard_timeout_seconds,
            "kill_grace_seconds": self.kill_grace_seconds,
        })

    @staticmethod
    def _cached_result(store: Optional[ResultStore],
                       key: str) -> Optional[CaseResult]:
        if store is None:
            return None
        record = store.get(key)
        if record is None:
            return None
        try:
            return CaseResult(**record["result"])
        except (KeyError, TypeError):
            return None  # tolerate foreign/older record shapes

    @staticmethod
    def _append_cache(store: Optional[ResultStore], key: str,
                      case: BatchCase, result: CaseResult) -> None:
        if store is None:
            return
        store.put(key, {
            "case": dataclasses.asdict(case),
            "result": dataclasses.asdict(result),
        })

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #
    def _hard_deadline(self, case: BatchCase) -> float:
        if self.hard_timeout_seconds is not None:
            return self.hard_timeout_seconds
        return case.timeout_seconds + self.kill_grace_seconds

    def _report(self, message: str) -> None:
        if self.progress is not None:
            self.progress(message)

    def _spawn(self, case: BatchCase, key: str) -> _Running:
        parent_conn, child_conn = self._context.Pipe(duplex=False)
        process = self._context.Process(
            target=_worker_main,
            args=(dataclasses.asdict(case), child_conn,
                  obs_trace.enabled()),
            daemon=True,
        )
        process.start()
        child_conn.close()
        return _Running(
            process=process,
            connection=parent_conn,
            case=case,
            key=key,
            started=time.monotonic(),
        )

    def _collect(self, running: _Running) -> Optional[CaseResult]:
        """Result if the worker finished/overran/died, else ``None``."""
        elapsed = time.monotonic() - running.started
        case = running.case
        if running.connection.poll(0):
            try:
                message = running.connection.recv()
                kind, payload = message[0], message[1]
                child_trace = message[2] if len(message) > 2 else None
            except (EOFError, OSError):
                kind, payload = ("error", "worker pipe closed unexpectedly")
                child_trace = None
            if kind == "ok":
                obs_trace.ingest(
                    child_trace,
                    parent_span_id=obs_trace.current_span_id(),
                    trace=obs_trace.current_trace() or None,
                )
                return CaseResult(**payload)
            return self._synthetic_result(case, ERROR_STATUS, elapsed,
                                          message=str(payload))
        if elapsed > self._hard_deadline(case):
            # terminate -> kill -> join: workers wedged in C-level solver
            # loops ignore SIGTERM (run() closes the pipe when it reaps
            # the entry, so only the process is brought down here)
            reap(running.process, grace=2.0)
            return self._synthetic_result(
                case, HARD_TIMEOUT_STATUS, elapsed,
                message=f"killed after {elapsed:.1f}s "
                        f"(hard limit {self._hard_deadline(case):.1f}s)",
            )
        if not running.process.is_alive():
            return self._synthetic_result(
                case, ERROR_STATUS, elapsed,
                message=f"worker exited with code {running.process.exitcode} "
                        "without reporting a result",
            )
        return None

    @staticmethod
    def _synthetic_result(case: BatchCase, status: str, elapsed: float,
                          message: str = "") -> CaseResult:
        return CaseResult(
            benchmark=case.benchmark,
            cgra_size=case.size,
            approach=case.approach,
            status=status,
            ii=None,
            mii=0,
            time_phase_seconds=None,
            space_phase_seconds=None,
            total_seconds=elapsed,
            message=message,
            arch=case.arch,
            opt_level=case.opt_level,
            opt_passes=",".join(case.opt_passes) if case.opt_passes else None,
            solver_backend=case.solver_backend,
            seed=case.seed,
        )

    def run(self, cases: Iterable[BatchCase]) -> BatchReport:
        """Execute ``cases``; results match the submission order exactly."""
        case_list = list(cases)
        start = time.monotonic()
        report = BatchReport(results=[None] * len(case_list))  # type: ignore[list-item]
        # Header record (job-count provenance) is configured here but only
        # written by the store when a result is actually appended; the
        # loader skips it (no "key"), so old readers and mixed-run caches
        # keep working.
        store = self._open_store(len(case_list))

        pending: deque = deque()
        for index, case in enumerate(case_list):
            key = case.cache_key()
            hit = self._cached_result(store, key)
            if hit is not None:
                report.results[index] = hit
                report.cache_hits += 1
                metrics.inc("repro_batch_cases_total", outcome="cache_hit")
                self._report(f"[cache] {case.label()}: {hit.status}")
            else:
                pending.append((index, case, key))

        running: Dict[int, _Running] = {}
        try:
            while pending or running:
                while pending and len(running) < self.jobs:
                    index, case, key = pending.popleft()
                    running[index] = self._spawn(case, key)
                    self._report(f"[start] {case.label()}")
                finished: List[int] = []
                for index, entry in running.items():
                    result = self._collect(entry)
                    if result is None:
                        continue
                    finished.append(index)
                    report.results[index] = result
                    report.executed += 1
                    metrics.inc("repro_batch_cases_total",
                                outcome=result.status)
                    logjson.log(
                        "batch_case",
                        case=entry.case.label(),
                        key=entry.key,
                        status=result.status,
                        ii=result.ii,
                        total_seconds=result.total_seconds,
                    )
                    if result.status == HARD_TIMEOUT_STATUS:
                        report.hard_timeouts += 1
                    elif result.status == ERROR_STATUS:
                        report.errors += 1
                    else:
                        self._append_cache(store, entry.key,
                                           entry.case, result)
                    self._report(
                        f"[done]  {entry.case.label()}: {result.status}"
                        + (f" II={result.ii}" if result.ii is not None else "")
                    )
                for index in finished:
                    entry = running.pop(index)
                    reap(entry.process, entry.connection, terminate=False)
                if not finished:
                    time.sleep(self.poll_interval)
        finally:
            for entry in running.values():
                reap(entry.process, entry.connection)

        report.elapsed_seconds = time.monotonic() - start
        return report


def build_cases(
    benchmarks: Sequence[str],
    sizes: Sequence[str],
    approaches: Sequence[str],
    timeout_seconds: float,
    arch: Optional[str] = None,
    opt_level: int = 0,
    opt_passes: Optional[Sequence[str]] = None,
    solver_backend: Optional[str] = None,
    seed: Optional[int] = None,
) -> List[BatchCase]:
    """The standard sweep grid, ordered size -> benchmark -> approach."""
    passes = tuple(opt_passes) if opt_passes else None
    return [
        BatchCase(benchmark=benchmark, size=size, approach=approach,
                  timeout_seconds=timeout_seconds, arch=arch,
                  opt_level=opt_level, opt_passes=passes,
                  solver_backend=solver_backend, seed=seed)
        for size in sizes
        for benchmark in benchmarks
        for approach in approaches
    ]


def results_by_case(
    cases: Sequence[BatchCase], report: BatchReport
) -> Dict[Tuple[str, str, str], CaseResult]:
    """Index a report by ``(benchmark, size, approach)`` for the drivers."""
    return {
        (case.benchmark, case.size, case.approach): result
        for case, result in zip(cases, report.results)
    }
