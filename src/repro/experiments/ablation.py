"""Ablation study of the mapper's design choices.

The paper motivates three ingredients without isolating their cost/benefit:
the capacity constraints, the connectivity constraints (both added to the
time formulation so that a space solution is guaranteed), and the
all-time-pairs MRRG adjacency enabled by neighbour-readable register files.
This driver measures the mapper with each ingredient toggled, plus the
torus-symmetry seeding of the space search, on a configurable benchmark
subset. It regenerates the ablation discussed in DESIGN.md (not a paper
exhibit).
"""

from __future__ import annotations

import argparse
import time
from typing import Dict, List, Optional, Sequence

from repro.arch.mrrg import TimeAdjacency
from repro.core.config import MapperConfig
from repro.core.mapper import MonomorphismMapper
from repro.experiments.runner import build_cgra
from repro.reporting.tables import Table, format_seconds
from repro.workloads.suite import load_benchmark

#: The ablation variants: name -> MapperConfig overrides.
VARIANTS: Dict[str, Dict[str, object]] = {
    "full": {},
    "no-capacity": {"enforce_capacity": False},
    "no-connectivity": {"enforce_connectivity": False},
    "no-cap-no-conn": {"enforce_capacity": False, "enforce_connectivity": False},
    "strict-connectivity": {"strict_connectivity": True},
    "consecutive-mrrg": {"time_adjacency": TimeAdjacency.CONSECUTIVE},
    "no-symmetry-pin": {"pin_first_placement": False},
}


def run_ablation(
    benchmarks: Sequence[str],
    size: str = "5x5",
    timeout_seconds: float = 30.0,
    variants: Optional[Sequence[str]] = None,
) -> List[Dict[str, object]]:
    """Run every variant on every benchmark; returns one record per pair."""
    chosen = list(variants) if variants else list(VARIANTS)
    records: List[Dict[str, object]] = []
    cgra = build_cgra(size)
    for name in benchmarks:
        dfg = load_benchmark(name)
        for variant in chosen:
            overrides = VARIANTS[variant]
            config = MapperConfig(
                time_timeout_seconds=timeout_seconds,
                space_timeout_seconds=timeout_seconds,
                total_timeout_seconds=timeout_seconds,
                **overrides,
            )
            mapper = MonomorphismMapper(cgra, config)
            started = time.monotonic()
            result = mapper.map(dfg)
            elapsed = time.monotonic() - started
            records.append({
                "benchmark": name,
                "variant": variant,
                "size": size,
                "status": result.status.value,
                "ii": result.ii,
                "mii": result.mii,
                "schedules_tried": result.schedules_tried,
                "time_phase": result.time_phase_seconds,
                "space_phase": result.space_phase_seconds,
                "total": elapsed,
            })
    return records


def ablation_table(records: Sequence[Dict[str, object]]) -> Table:
    table = Table(
        headers=["Benchmark", "Variant", "Status", "II", "mII",
                 "Schedules", "Time phase", "Space phase", "Total"],
        title="Ablation of the mapper's design choices",
    )
    for record in records:
        table.add_row(
            record["benchmark"],
            record["variant"],
            record["status"],
            record["ii"],
            record["mii"],
            record["schedules_tried"],
            format_seconds(record["time_phase"]),
            format_seconds(record["space_phase"]),
            format_seconds(record["total"]),
        )
    return table


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--benchmarks", nargs="+",
                        default=["aes", "backprop", "susan"])
    parser.add_argument("--size", default="5x5")
    parser.add_argument("--timeout", type=float, default=30.0)
    parser.add_argument("--variants", nargs="+", default=None,
                        choices=list(VARIANTS), help="subset of variants")
    parser.add_argument("--csv", type=str, default=None)
    args = parser.parse_args(argv)

    records = run_ablation(
        args.benchmarks, size=args.size, timeout_seconds=args.timeout,
        variants=args.variants,
    )
    table = ablation_table(records)
    print(table.render())
    if args.csv:
        table.to_csv(args.csv)
        print(f"\nwritten {args.csv}")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CLI
    raise SystemExit(main())
