"""Values reported in the paper (Table III and Fig. 5).

Transcribed from the paper so that every experiment driver can print
paper-vs-measured comparisons. ``None`` for a time means the 4000 s timeout
(``TO``); ``None`` for an II means the corresponding tool found no mapping.

Column meaning (per CGRA size): ``mono_time`` and ``mono_space`` are the
time- and space-phase compilation times of the paper's monomorphism mapper,
``satmapit_time`` the baseline's compilation time, ``ii`` the II both tools
achieved (the paper reports a single II column; where the monomorphism tool
timed out the value refers to the baseline), ``mii`` the minimum II.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional


@dataclass(frozen=True)
class PaperEntry:
    mono_time: Optional[float]
    mono_space: Optional[float]
    satmapit_time: Optional[float]
    ii: Optional[int]
    mii: int

    @property
    def mono_total(self) -> Optional[float]:
        if self.mono_time is None or self.mono_space is None:
            return None
        return self.mono_time + self.mono_space

    @property
    def ctr(self) -> Optional[float]:
        """Compilation-time ratio (SAT-MapIt / monomorphism)."""
        total = self.mono_total
        if total is None or self.satmapit_time is None or total == 0:
            return None
        return self.satmapit_time / total


_E = PaperEntry

PAPER_TABLE3: Dict[str, Dict[str, PaperEntry]] = {
    "2x2": {
        "aes": _E(0.40, 0.02, 2.57, 16, 14),
        "backprop": _E(0.44, 0.03, 110.01, 10, 9),
        "basicmath": _E(0.32, 0.11, 0.42, 7, 7),
        "bitcount": _E(0.038, 0.01, 0.06, 3, 3),
        "cfd": _E(None, None, None, None, 13),
        "crc32": _E(0.20, 0.01, 3.85, 11, 8),
        "fft": _E(0.09, 0.01, 0.46, 7, 7),
        "gsm": _E(0.06, 0.01, 0.43, 6, 6),
        "heartwall": _E(0.14, 0.01, 1.31, 9, 9),
        "hotspot3D": _E(1.13, 0.09, 223.51, 17, 15),
        "lud": _E(0.07, 0.01, 0.45, 7, 7),
        "nw": _E(0.18, 0.01, 2.48, 9, 9),
        "particlefilter": _E(0.12, 0.01, 1.67, 10, 10),
        "sha1": _E(0.05, 0.43, 0.27, 6, 6),
        "sha2": _E(0.07, 0.01, 0.60, 7, 6),
        "stringsearch": _E(0.10, 0.01, 1.04, 7, 7),
        "susan": _E(0.09, 0.01, 0.97, 6, 6),
    },
    "5x5": {
        "aes": _E(0.47, 0.04, 39.07, 16, 14),
        "backprop": _E(0.12, 0.29, 9.98, 5, 5),
        "basicmath": _E(0.13, 0.31, 7.82, 7, 7),
        "bitcount": _E(0.39, 0.01, 1.15, 3, 3),
        "cfd": _E(0.07, None, 23.59, None, 3),
        "crc32": _E(0.30, 0.01, 75.75, 11, 8),
        "fft": _E(0.14, 0.01, 8.22, 7, 7),
        "gsm": _E(0.11, 0.01, 15.49, 5, 4),
        "heartwall": _E(0.16, 0.01, 45.18, 3, 3),
        "hotspot3D": _E(0.54, 0.01, 209.87, 6, 3),
        "lud": _E(0.07, 0.01, 7.95, 3, 3),
        "nw": _E(0.05, 1.16, 5.39, 2, 2),
        "particlefilter": _E(0.34, 0.01, 28.08, 9, 9),
        "sha1": _E(0.11, 0.09, 15.44, 4, 2),
        "sha2": _E(0.16, 4.07, 9.22, 7, 7),
        "stringsearch": _E(0.10, 1.09, 17.01, 3, 3),
        "susan": _E(0.08, 0.01, 15.94, 2, 2),
    },
    "10x10": {
        "aes": _E(0.48, 0.01, 342.11, 16, 14),
        "backprop": _E(0.13, 0.11, 112.80, 5, 5),
        "basicmath": _E(0.14, 0.01, 102.83, 7, 7),
        "bitcount": _E(0.039, 0.01, 14.73, 3, 3),
        "cfd": _E(0.12, None, None, None, 2),
        "crc32": _E(0.31, 0.01, 262.82, 11, 8),
        "fft": _E(0.14, 0.01, 101.34, 7, 7),
        "gsm": _E(0.11, 0.01, 191.03, 5, 4),
        "heartwall": _E(0.17, 0.01, 571.87, 3, 3),
        "hotspot3D": _E(0.71, None, None, None, 2),
        "lud": _E(0.08, 0.01, 89.75, 3, 3),
        "nw": _E(0.06, 10.25, 61.55, 2, 2),
        "particlefilter": _E(0.37, 70.34, 451.48, 9, 9),
        "sha1": _E(0.14, 0.03, 195.86, 4, 2),
        "sha2": _E(0.17, 10.21, 107.51, 7, 7),
        "stringsearch": _E(0.11, 0.73, 203.88, 3, 3),
        "susan": _E(0.09, 0.01, 213.63, 2, 2),
    },
    "20x20": {
        "aes": _E(0.48, 0.013, None, 16, 14),
        "backprop": _E(0.14, 0.024, None, 5, 5),
        "basicmath": _E(0.19, 0.086, 1362.58, 7, 7),
        "bitcount": _E(0.062, 0.01, 223.88, 3, 3),
        "cfd": _E(0.14, None, None, None, 2),
        "crc32": _E(0.33, 0.012, 3867.11, 11, 8),
        "fft": _E(0.23, 0.01, 1485.63, 7, 7),
        "gsm": _E(0.14, 0.01, 2799.07, 5, 4),
        "heartwall": _E(0.28, 0.01, None, 3, 3),
        "hotspot3D": _E(0.83, None, None, None, 2),
        "lud": _E(0.086, 0.01, 1321.66, 3, 3),
        "nw": _E(0.068, 0.15, 981.69, 2, 2),
        "particlefilter": _E(0.37, 141.54, None, 9, 9),
        "sha1": _E(0.12, 0.036, None, 4, 2),
        "sha2": _E(0.17, 2.02, 1585.18, 7, 7),
        "stringsearch": _E(0.11, 0.61, 3108.92, 3, 3),
        "susan": _E(0.09, 0.01, 3314.91, 2, 2),
    },
}

PAPER_AVERAGE_CTR: Dict[str, float] = {
    "2x2": 30.85,
    "5x5": 103.76,
    "10x10": 887.84,
    "20x20": 10288.89,
}

PAPER_TIMEOUT_SECONDS = 4000.0

# Fig. 5: compilation time of the `aes` benchmark against CGRA size.
PAPER_FIG5_AES: Dict[str, Dict[str, Optional[float]]] = {
    "monomorphism": {
        size: PAPER_TABLE3[size]["aes"].mono_total for size in PAPER_TABLE3
    },
    "satmapit": {
        size: PAPER_TABLE3[size]["aes"].satmapit_time for size in PAPER_TABLE3
    },
}
