"""Experiment drivers regenerating the paper's tables and figures.

Every table and figure of the paper's evaluation section has a driver here:

* Table I / Table II -- :mod:`repro.experiments.table1_table2`
  (ASAP/ALAP/MobS and KMS of the running example).
* Table III -- :mod:`repro.experiments.table3` (II and compilation time of
  the decoupled mapper vs. the SAT-MapIt-style baseline on the 17 benchmarks
  and four CGRA sizes).
* Fig. 5 -- :mod:`repro.experiments.fig5` (compilation time vs. CGRA size
  for the ``aes`` benchmark).
* Design ablations (not a paper exhibit, but the design choices of
  Sec. IV-B/IV-C) -- :mod:`repro.experiments.ablation`.
* Architecture-scenario sweep (beyond the paper: II across heterogeneous
  fabrics described by :mod:`repro.arch.spec`) --
  :mod:`repro.experiments.arch_sweep`.
* Opt-level sweep (beyond the paper: II / compile-time deltas of the
  :mod:`repro.opt` pre-mapping pass pipelines) --
  :mod:`repro.experiments.opt_sweep`.

The drivers print ASCII tables/figures, can emit CSV, and are callable both
as modules (``python -m repro.experiments.table3``) and from the benchmark
harness under ``benchmarks/``. The values reported in the paper are kept in
:mod:`repro.experiments.paper_data` so every run shows paper-vs-measured
side by side.
"""

from repro.experiments.batch import (
    BatchCase,
    BatchReport,
    BatchRunner,
    build_cases,
    results_by_case,
)
from repro.experiments.arch_sweep import build_arch_cases
from repro.experiments.opt_sweep import build_opt_cases
from repro.experiments.runner import (
    CaseResult,
    build_cgra,
    build_cgra_from_arch,
    run_case,
    run_decoupled_case,
    run_baseline_case,
)
from repro.experiments.paper_data import PAPER_TABLE3, PaperEntry

__all__ = [
    "BatchCase",
    "BatchReport",
    "BatchRunner",
    "CaseResult",
    "build_arch_cases",
    "build_cases",
    "build_opt_cases",
    "build_cgra",
    "build_cgra_from_arch",
    "results_by_case",
    "run_case",
    "run_decoupled_case",
    "run_baseline_case",
    "PAPER_TABLE3",
    "PaperEntry",
]
