"""Reproduce paper Table III: II and compilation time on the 17 benchmarks.

For every requested CGRA size the driver runs the decoupled monomorphism
mapper and the SAT-MapIt-style coupled baseline on every benchmark, then
prints a table in the paper's format (per-phase times, delta, compilation
time ratio, II, mII) together with the values the paper reports.

Absolute times cannot match the paper (a pure-Python CDCL solver replaces Z3
and the machine differs); the claims checked are qualitative and summarised
at the end of each block: identical II where both approaches finish, and a
CTR (baseline / monomorphism) that grows with the CGRA size.

Run e.g.::

    python -m repro.experiments.table3 --sizes 2x2 5x5 --timeout 60
"""

from __future__ import annotations

import argparse
import os
from typing import Dict, List, Optional, Sequence, Tuple

from repro.experiments.paper_data import PAPER_AVERAGE_CTR, PAPER_TABLE3
from repro.experiments.runner import (
    CaseResult,
    DEFAULT_SIZES,
    average,
    compilation_time_ratio,
    run_baseline_case,
    run_decoupled_case,
)
from repro.reporting.tables import Table, format_ratio, format_seconds
from repro.workloads.suite import benchmark_names, spec


def run_size_block(
    size: str,
    benchmarks: Sequence[str],
    timeout_seconds: float,
    run_baseline: bool = True,
    verbose: bool = False,
    results: Optional[Dict[Tuple[str, str, str], CaseResult]] = None,
    opt_level: int = 0,
) -> Dict[str, object]:
    """Run one CGRA-size block of Table III and return its data.

    ``results`` may hold precomputed cases keyed by
    ``(benchmark, size, approach)`` -- filled by the batch engine when the
    driver runs with ``--jobs``/``--cache``; missing cases run inline.
    """

    def case_for(name: str, approach: str) -> CaseResult:
        if results is not None:
            hit = results.get((name, size, approach))
            if hit is not None:
                return hit
        if approach == "monomorphism":
            return run_decoupled_case(name, size, timeout_seconds,
                                      opt_level=opt_level)
        return run_baseline_case(name, size, timeout_seconds,
                                 opt_level=opt_level)

    rows: List[Dict[str, object]] = []
    for name in benchmarks:
        mono = case_for(name, "monomorphism")
        if run_baseline:
            baseline = case_for(name, "satmapit")
        else:
            baseline = None
        ratio = compilation_time_ratio(mono, baseline) if baseline else None
        paper = PAPER_TABLE3.get(size, {}).get(name)
        rows.append({
            "benchmark": name,
            "nodes": mono.nodes,
            "mono": mono,
            "baseline": baseline,
            "ctr": ratio,
            "paper": paper,
        })
        if verbose:
            mono_text = (
                format_seconds(mono.total_seconds) if mono.succeeded else "TO"
            )
            base_text = (
                "skipped" if baseline is None
                else format_seconds(baseline.total_seconds)
                if baseline.succeeded else "TO"
            )
            print(f"  [{size}] {name}: mono={mono_text}s II={mono.ii} "
                  f"baseline={base_text}s II={baseline.ii if baseline else '-'}")
    return {"size": size, "rows": rows}


def _final_ii_seconds(case: Optional[CaseResult]) -> Optional[float]:
    """Solver seconds spent at the final (for successes: the achieved) II.

    Comes from the per-II attribution the engines record into
    ``MappingResult.stats`` and the batch layer persists on
    :class:`CaseResult` -- the "how much of the budget did the last II
    burn" view the ROADMAP's solver-observability axis asked for.
    """
    if case is None or not case.per_ii:
        return None
    last = case.per_ii[-1]
    return (last.get("time") or 0.0) + (last.get("space") or 0.0)


def block_to_table(block: Dict[str, object]) -> Table:
    size = block["size"]
    table = Table(
        headers=[
            "Benchmark", "Nodes",
            "Time", "Space", "SAT-MapIt", "dT", "CTR",
            "II", "II(base)", "mII", "IIs", "t@II",
            "paper II", "paper mII", "paper CTR",
        ],
        title=f"Table III block -- {size} CGRA "
              f"(paper average CTR {PAPER_AVERAGE_CTR.get(size, float('nan')):.2f}x)",
    )
    ctrs: List[Optional[float]] = []
    mono_totals: List[Optional[float]] = []
    baseline_totals: List[Optional[float]] = []
    for row in block["rows"]:
        mono: CaseResult = row["mono"]
        baseline: Optional[CaseResult] = row["baseline"]
        paper = row["paper"]
        delta = None
        if mono.succeeded and baseline is not None and baseline.succeeded:
            delta = mono.total_seconds - baseline.total_seconds
        table.add_row(
            row["benchmark"],
            row["nodes"],
            format_seconds(mono.time_phase_seconds) if mono.succeeded else "TO",
            format_seconds(mono.space_phase_seconds) if mono.succeeded else "-",
            (format_seconds(baseline.total_seconds)
             if baseline is not None and baseline.succeeded
             else ("TO" if baseline is not None else "skipped")),
            format_seconds(delta) if delta is not None else "-",
            format_ratio(row["ctr"]),
            mono.ii,
            baseline.ii if baseline is not None else None,
            mono.mii,
            mono.iis_tried or (len(mono.per_ii) if mono.per_ii else None),
            format_seconds(_final_ii_seconds(mono)),
            paper.ii if paper else None,
            paper.mii if paper else None,
            format_ratio(paper.ctr) if paper else "-",
        )
        ctrs.append(row["ctr"])
        mono_totals.append(mono.total_seconds if mono.succeeded else None)
        if baseline is not None:
            baseline_totals.append(
                baseline.total_seconds if baseline.succeeded else None
            )
    mean_ctr = average(ctrs)
    table.add_row(
        "Average", None,
        format_seconds(average(mono_totals)), None,
        format_seconds(average(baseline_totals)) if baseline_totals else "-",
        None,
        format_ratio(mean_ctr),
        None, None, None, None, None, None, None,
        format_ratio(PAPER_AVERAGE_CTR.get(block["size"])),
    )
    return table


def qualitative_checks(block: Dict[str, object]) -> List[str]:
    """The paper's headline claims, evaluated on the measured block."""
    same_ii = 0
    comparable = 0
    wins = 0
    finished_pairs = 0
    for row in block["rows"]:
        mono: CaseResult = row["mono"]
        baseline: Optional[CaseResult] = row["baseline"]
        if baseline is None:
            continue
        if mono.succeeded and baseline.succeeded:
            comparable += 1
            if mono.ii == baseline.ii:
                same_ii += 1
            finished_pairs += 1
            if mono.total_seconds <= baseline.total_seconds:
                wins += 1
    lines = []
    if comparable:
        lines.append(
            f"same II as the baseline in {same_ii}/{comparable} cases "
            "(paper: same II in 57/62 solved cases overall)"
        )
        lines.append(
            f"monomorphism mapper is at least as fast in {wins}/{finished_pairs} "
            "finished pairs"
        )
    return lines


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--sizes", nargs="+", default=list(DEFAULT_SIZES),
                        help="CGRA sizes to run (e.g. 2x2 5x5 10x10 20x20)")
    parser.add_argument("--benchmarks", nargs="+", default=benchmark_names(),
                        help="benchmark subset to run")
    parser.add_argument("--timeout", type=float, default=60.0,
                        help="per-case timeout in seconds (paper used 4000)")
    parser.add_argument("--no-baseline", action="store_true",
                        help="skip the SAT-MapIt-style baseline")
    parser.add_argument("--csv-prefix", type=str, default=None,
                        help="write one CSV per size with this prefix")
    parser.add_argument("--jobs", type=int, default=os.cpu_count() or 1,
                        help="run the cases through the parallel batch "
                             "engine with this many workers "
                             "(default: all CPUs)")
    parser.add_argument("--cache", type=str, default=None,
                        help="JSONL result cache shared with 'repro-map "
                             "sweep'; solved cases are skipped")
    parser.add_argument("--opt-level", default="O0",
                        help="pre-mapping optimization level for both "
                             "mappers (O0..O2, default O0; the paper's "
                             "numbers are O0)")
    parser.add_argument("--verbose", action="store_true")
    args = parser.parse_args(argv)

    for name in args.benchmarks:
        spec(name)  # fail early on typos
    from repro.opt.pipeline import parse_opt_level
    opt_level = parse_opt_level(args.opt_level)

    results = None
    if args.jobs > 1 or args.cache:
        from repro.experiments.batch import (
            BatchRunner, build_cases, results_by_case,
        )
        approaches = ["monomorphism"]
        if not args.no_baseline:
            approaches.append("satmapit")
        cases = build_cases(args.benchmarks, args.sizes, approaches,
                            args.timeout, opt_level=opt_level)
        runner = BatchRunner(
            jobs=max(1, args.jobs),
            cache_path=args.cache,
            progress=print if args.verbose else None,
        )
        report = runner.run(cases)
        results = results_by_case(cases, report)
        print(report.summary() + "\n")

    for size in args.sizes:
        block = run_size_block(
            size,
            args.benchmarks,
            args.timeout,
            run_baseline=not args.no_baseline,
            verbose=args.verbose,
            results=results,
            opt_level=opt_level,
        )
        table = block_to_table(block)
        print(table.render())
        for line in qualitative_checks(block):
            print("  * " + line)
        print()
        if args.csv_prefix:
            path = f"{args.csv_prefix}_{size}.csv"
            table.to_csv(path)
            print(f"written {path}\n")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CLI
    raise SystemExit(main())
