"""Reproduce paper Table I (ASAP/ALAP/MobS) and Table II (KMS).

Both tables are derived from the running-example DFG of Fig. 2a. The
reconstruction in :mod:`repro.workloads.running_example` matches the paper's
Table I row for row, which this driver prints side by side with the
expected values.
"""

from __future__ import annotations

import argparse
from typing import Dict, List, Optional, Sequence

from repro.graphs.analysis import mobility_schedule, min_ii, rec_ii, res_ii
from repro.graphs.kms import KernelMobilitySchedule
from repro.reporting.tables import Table
from repro.workloads.running_example import running_example_dfg

#: Table I exactly as printed in the paper (rows are time steps).
PAPER_TABLE1: Dict[str, List[List[int]]] = {
    "asap": [
        [0, 1, 2, 3, 4],
        [5, 11],
        [6, 12],
        [7, 8, 13],
        [9],
        [10],
    ],
    "alap": [
        [4],
        [3, 5],
        [0, 2, 6],
        [1, 8, 11],
        [7, 9, 12],
        [10, 13],
    ],
    "mobs": [
        [0, 1, 2, 3, 4],
        [0, 1, 2, 3, 5, 11],
        [0, 1, 2, 6, 11, 12],
        [1, 7, 8, 11, 12, 13],
        [7, 9, 12, 13],
        [10, 13],
    ],
}

PAPER_RUNNING_EXAMPLE_II = 4


def _cells(rows: Sequence[Sequence[int]]) -> List[str]:
    return [" ".join(str(n) for n in row) for row in rows]


def build_table1() -> Table:
    """ASAP / ALAP / MobS of the running example vs the paper's Table I."""
    dfg = running_example_dfg()
    mobs = mobility_schedule(dfg)
    table = Table(
        headers=["Time", "ASAP", "ALAP", "MobS",
                 "paper ASAP", "paper ALAP", "paper MobS", "match"],
        title="Table I -- ASAP, ALAP and MobS for the running example",
    )
    asap_rows = _cells(mobs.asap_rows())
    alap_rows = _cells(mobs.alap_rows())
    mobs_rows = _cells(mobs.rows())
    paper_asap = _cells(PAPER_TABLE1["asap"])
    paper_alap = _cells(PAPER_TABLE1["alap"])
    paper_mobs = _cells(PAPER_TABLE1["mobs"])
    for time_step in range(mobs.length):
        match = (
            asap_rows[time_step] == paper_asap[time_step]
            and alap_rows[time_step] == paper_alap[time_step]
            and mobs_rows[time_step] == paper_mobs[time_step]
        )
        table.add_row(
            time_step,
            asap_rows[time_step],
            alap_rows[time_step],
            mobs_rows[time_step],
            paper_asap[time_step],
            paper_alap[time_step],
            paper_mobs[time_step],
            "yes" if match else "NO",
        )
    return table


def build_table2(ii: int = PAPER_RUNNING_EXAMPLE_II) -> Table:
    """The Kernel Mobility Schedule of the running example for a given II."""
    dfg = running_example_dfg()
    mobs = mobility_schedule(dfg)
    kms = KernelMobilitySchedule(mobs, ii)
    table = Table(
        headers=["Slot", "Entries (node_iteration)"],
        title=f"Table II -- KMS for the MobS of Table I and II={ii} "
              f"({kms.num_foldings} foldings)",
    )
    for slot, row in enumerate(kms.rows()):
        table.add_row(slot, " ".join(f"{node}_{it}" for node, it in row))
    return table


def summary_lines() -> List[str]:
    """mII derivation of the running example (Sec. IV-B)."""
    dfg = running_example_dfg()
    resource = res_ii(dfg, 4)
    recurrence = rec_ii(dfg)
    return [
        f"ResII = ceil({dfg.num_nodes} / 4) = {resource}",
        f"RecII = {recurrence}",
        f"mII = max(ResII, RecII) = {min_ii(dfg, 4)} "
        f"(paper: {PAPER_RUNNING_EXAMPLE_II})",
    ]


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--ii", type=int, default=PAPER_RUNNING_EXAMPLE_II,
                        help="II used to fold the MobS into the KMS")
    parser.add_argument("--csv", type=str, default=None,
                        help="write Table I to this CSV file")
    args = parser.parse_args(argv)

    table1 = build_table1()
    print(table1.render())
    print()
    for line in summary_lines():
        print(line)
    print()
    table2 = build_table2(args.ii)
    print(table2.render())
    if args.csv:
        table1.to_csv(args.csv)
        print(f"\nTable I written to {args.csv}")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CLI
    raise SystemExit(main())
