"""repro -- Monomorphism-based CGRA mapping via space and time decoupling.

A self-contained reproduction of the DATE 2025 paper by Tirelli, Otoni and
Pozzi. The package provides:

* a CGRA architecture model and its time-expanded MRRG (:mod:`repro.arch`),
* DFG data structures and modulo-scheduling analysis (:mod:`repro.graphs`),
* a SAT/SMT solving substrate (:mod:`repro.smt`),
* a monomorphism search engine (:mod:`repro.matching`),
* the decoupled space/time mapper (:mod:`repro.core`),
* a SAT-MapIt-style coupled baseline (:mod:`repro.baseline`),
* a loop-kernel front-end that extracts DFGs from source text
  (:mod:`repro.frontend`),
* a pre-mapping DFG optimization middle-end with verified pass pipelines
  (:mod:`repro.opt`),
* the paper's benchmark workloads (:mod:`repro.workloads`),
* cycle-level simulators validating mappings end-to-end (:mod:`repro.sim`),
* experiment drivers regenerating every table and figure
  (:mod:`repro.experiments`).

Quickstart::

    from repro import CGRA, MonomorphismMapper, load_benchmark

    cgra = CGRA(4, 4)
    result = MonomorphismMapper(cgra).map(load_benchmark("bitcount"))
    print(result.summary())
    print(result.mapping.render_kernel())
"""

from repro.arch import (
    ArchSpec,
    CGRA,
    MRRG,
    Opcode,
    TimeAdjacency,
    Topology,
    build_preset,
    preset_names,
    resolve_arch,
)
from repro.core import (
    MapperConfig,
    analyze_feasibility,
    Mapping,
    MappingResult,
    MappingStatus,
    MonomorphismMapper,
    Schedule,
    validate_mapping,
)
from repro.graphs import DFG, DependenceKind, min_ii, rec_ii, res_ii
from repro.opt import OptResult, PassManager, optimize_dfg, pass_names
from repro.workloads import load_benchmark, benchmark_names, running_example_dfg

__version__ = "1.0.0"

__all__ = [
    "ArchSpec",
    "CGRA",
    "MRRG",
    "Opcode",
    "TimeAdjacency",
    "Topology",
    "build_preset",
    "preset_names",
    "resolve_arch",
    "analyze_feasibility",
    "MapperConfig",
    "Mapping",
    "MappingResult",
    "MappingStatus",
    "MonomorphismMapper",
    "Schedule",
    "validate_mapping",
    "DFG",
    "DependenceKind",
    "min_ii",
    "rec_ii",
    "res_ii",
    "OptResult",
    "PassManager",
    "optimize_dfg",
    "pass_names",
    "load_benchmark",
    "benchmark_names",
    "running_example_dfg",
    "__version__",
]
