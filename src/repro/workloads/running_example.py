"""The running example of the paper (Fig. 2a).

The paper never lists the edge set of its 14-node running example, but its
Table I (ASAP / ALAP / MobS) and Fig. 2b/2c/4 pin the structure down almost
completely. The DFG below was reconstructed so that:

* ASAP, ALAP and the Mobility Schedule match Table I row for row;
* the recurrence cycles give ``RecII = 4`` and ``ResII = ceil(14/4) = 4`` on
  a 2x2 CGRA, hence ``mII = 4`` as in the paper;
* nodes 2 and 8 share a data dependence (the "invalid time solution" of
  Fig. 2c schedules them in the same step);
* nodes 7 and 4 are linked by a loop-carried dependence (the "invalid space
  solution" of Fig. 2c places them on non-adjacent PEs).

Opcodes are assigned so the DFG is executable by the simulators (a small
pair of recurrences combining live-in values), but they play no role in the
mapping itself.
"""

from __future__ import annotations

from repro.arch.isa import Opcode
from repro.graphs.dfg import DFG


def running_example_dfg() -> DFG:
    """Build the 14-node running-example DFG (paper Fig. 2a)."""
    dfg = DFG(name="running_example")
    opcodes = {
        0: Opcode.INPUT,   # live-in
        1: Opcode.INPUT,   # live-in
        2: Opcode.CONST,   # constant
        3: Opcode.CONST,   # constant
        4: Opcode.PHI,     # loop-carried accumulator (fed by node 7)
        5: Opcode.ABS,
        6: Opcode.MUL,
        7: Opcode.ADD,
        8: Opcode.XOR,
        9: Opcode.NOT,
        10: Opcode.ADD,
        11: Opcode.ADD,    # second recurrence (fed by node 13)
        12: Opcode.NEG,
        13: Opcode.ABS,
    }
    values = {2: 3, 3: 5, 0: 7, 1: 11, 4: 1}
    for node_id, opcode in opcodes.items():
        dfg.add_node(node_id, opcode, name=f"v{node_id}",
                     value=values.get(node_id, 0))

    # Data dependencies (black edges of Fig. 2a).
    dfg.add_data_edge(4, 5, operand_index=0)
    dfg.add_data_edge(5, 6, operand_index=0)
    dfg.add_data_edge(3, 6, operand_index=1)
    dfg.add_data_edge(6, 8, operand_index=0)
    dfg.add_data_edge(2, 8, operand_index=1)
    dfg.add_data_edge(8, 9, operand_index=0)
    dfg.add_data_edge(9, 10, operand_index=0)
    dfg.add_data_edge(6, 7, operand_index=0)
    dfg.add_data_edge(1, 7, operand_index=1)
    dfg.add_data_edge(7, 10, operand_index=1)
    dfg.add_data_edge(0, 11, operand_index=0)
    dfg.add_data_edge(11, 12, operand_index=0)
    dfg.add_data_edge(12, 13, operand_index=0)

    # Loop-carried dependencies (red edges of Fig. 2a).
    dfg.add_loop_carried_edge(7, 4, distance=1, operand_index=0)
    dfg.add_loop_carried_edge(13, 11, distance=1, operand_index=1)
    return dfg
