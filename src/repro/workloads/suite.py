"""The 17-benchmark suite of the paper's evaluation (Table III).

Every entry records the node count and RecII taken from the paper, the shape
used to synthesise the stand-in DFG (see :mod:`repro.workloads.kernels`), and
the paper's reported II / mII per CGRA size, which EXPERIMENTS.md compares
against the values measured by this reproduction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.graphs.dfg import DFG
from repro.workloads.kernels import KernelShape, build_kernel
from repro.workloads.running_example import running_example_dfg

CGRA_SIZES: Tuple[str, ...] = ("2x2", "5x5", "10x10", "20x20")


@dataclass(frozen=True)
class BenchmarkSpec:
    """Metadata of one Table III benchmark."""

    name: str
    suite: str                     # "mibench" or "rodinia"
    num_nodes: int                 # paper column "DFG Nodes"
    rec_ii: int                    # derived from the paper's mII columns
    shape: KernelShape
    description: str
    paper_ii: Dict[str, Optional[int]] = field(default_factory=dict)
    paper_mii: Dict[str, int] = field(default_factory=dict)

    def build(self) -> DFG:
        return build_kernel(self.name, self.shape)


def _spec(
    name: str,
    suite: str,
    num_nodes: int,
    rec_ii: int,
    feeder_style: str,
    sink_nodes: int,
    theme: str,
    description: str,
    paper_ii: Dict[str, Optional[int]],
) -> BenchmarkSpec:
    paper_mii = {
        "2x2": max(-(-num_nodes // 4), rec_ii),
        "5x5": max(-(-num_nodes // 25), rec_ii),
        "10x10": max(-(-num_nodes // 100), rec_ii),
        "20x20": max(-(-num_nodes // 400), rec_ii),
    }
    shape = KernelShape(
        num_nodes=num_nodes,
        rec_ii=rec_ii,
        feeder_style=feeder_style,
        sink_nodes=sink_nodes,
        theme=theme,
        seed=sum(ord(character) for character in name),
    )
    return BenchmarkSpec(
        name=name,
        suite=suite,
        num_nodes=num_nodes,
        rec_ii=rec_ii,
        shape=shape,
        description=description,
        paper_ii=paper_ii,
        paper_mii=paper_mii,
    )


SPECS: Dict[str, BenchmarkSpec] = {
    spec.name: spec
    for spec in [
        _spec("aes", "mibench", 23, 14, "chain", 2, "crypto",
              "AES round: long serial state-update chain (S-box/XOR mix)",
              {"2x2": 16, "5x5": 16, "10x10": 16, "20x20": 16}),
        _spec("backprop", "rodinia", 34, 5, "split", 5, "dsp",
              "Back-propagation weight update: MAC trees feeding an accumulator",
              {"2x2": 10, "5x5": 5, "10x10": 5, "20x20": 5}),
        _spec("basicmath", "mibench", 21, 7, "chain", 3, "dsp",
              "Cubic-equation solver step: serial arithmetic recurrence",
              {"2x2": 7, "5x5": 7, "10x10": 7, "20x20": 7}),
        _spec("bitcount", "mibench", 7, 3, "tree", 1, "integer",
              "Bit counting: mask/shift/accumulate recurrence",
              {"2x2": 3, "5x5": 3, "10x10": 3, "20x20": 3}),
        _spec("cfd", "rodinia", 51, 2, "split", 8, "stencil",
              "CFD flux kernel: wide flux evaluation with a short accumulator",
              {"2x2": None, "5x5": None, "10x10": None, "20x20": None}),
        _spec("crc32", "mibench", 24, 8, "chain", 3, "crypto",
              "CRC32: 8-deep shift/XOR state recurrence with table feed",
              {"2x2": 11, "5x5": 11, "10x10": 11, "20x20": 11}),
        _spec("fft", "mibench", 20, 7, "split", 2, "dsp",
              "FFT butterfly: twiddle multiply-accumulate recurrence",
              {"2x2": 7, "5x5": 7, "10x10": 7, "20x20": 7}),
        _spec("gsm", "mibench", 24, 4, "split", 3, "dsp",
              "GSM LPC step: short filter recurrence with term trees",
              {"2x2": 6, "5x5": 5, "10x10": 5, "20x20": 5}),
        _spec("heartwall", "rodinia", 35, 3, "tree", 4, "stencil",
              "Heart-wall tracking: correlation sum over a window",
              {"2x2": 9, "5x5": 3, "10x10": 3, "20x20": 3}),
        _spec("hotspot3D", "rodinia", 57, 2, "split", 6, "stencil",
              "3D thermal stencil: 7-point weighted sum with an accumulator",
              {"2x2": 17, "5x5": 6, "10x10": None, "20x20": None}),
        _spec("lud", "rodinia", 26, 3, "tree", 3, "dsp",
              "LU decomposition inner product",
              {"2x2": 7, "5x5": 3, "10x10": 3, "20x20": 3}),
        _spec("nw", "rodinia", 33, 2, "split", 4, "compare",
              "Needleman-Wunsch cell update: max of three candidates",
              {"2x2": 9, "5x5": 2, "10x10": 2, "20x20": 2}),
        _spec("particlefilter", "rodinia", 38, 9, "split", 4, "dsp",
              "Particle filter weight update: long likelihood recurrence",
              {"2x2": 10, "5x5": 9, "10x10": 9, "20x20": 9}),
        _spec("sha1", "mibench", 21, 2, "tree", 2, "crypto",
              "SHA-1 round: rotate/XOR mixing into two state words",
              {"2x2": 6, "5x5": 4, "10x10": 4, "20x20": 4}),
        _spec("sha2", "mibench", 25, 7, "chain", 3, "crypto",
              "SHA-256 round: sigma/choice chain updating the state",
              {"2x2": 7, "5x5": 7, "10x10": 7, "20x20": 7}),
        _spec("stringsearch", "mibench", 28, 3, "tree", 4, "compare",
              "Boyer-Moore-ish comparison: character compare tree + index update",
              {"2x2": 7, "5x5": 3, "10x10": 3, "20x20": 3}),
        _spec("susan", "mibench", 21, 2, "tree", 3, "stencil",
              "SUSAN corner response: brightness difference accumulation",
              {"2x2": 6, "5x5": 2, "10x10": 2, "20x20": 2}),
    ]
}


def benchmark_names() -> List[str]:
    """Names of the 17 Table III benchmarks, in the paper's order."""
    return list(SPECS)


def spec(name: str) -> BenchmarkSpec:
    try:
        return SPECS[name]
    except KeyError as exc:
        raise KeyError(
            f"unknown benchmark {name!r}; available: {', '.join(SPECS)}"
        ) from exc


def load_benchmark(name: str) -> DFG:
    """Build the DFG of one benchmark (or the running example)."""
    if name in ("running_example", "example"):
        return running_example_dfg()
    return spec(name).build()


def load_all() -> Dict[str, DFG]:
    """Build every Table III benchmark DFG."""
    return {name: SPECS[name].build() for name in SPECS}
