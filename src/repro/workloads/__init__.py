"""Benchmark workloads used by the paper's evaluation.

* :mod:`repro.workloads.running_example` -- the 14-node DFG of paper Fig. 2,
  reconstructed so that its ASAP / ALAP / Mobility Schedule reproduce
  Table I exactly.
* :mod:`repro.workloads.kernels` -- synthetic stand-ins for the 17
  MiBench / Rodinia inner loops of Table III. The paper's DFGs are produced
  by an LLVM front-end we do not have; each stand-in matches the paper's
  node count and recurrence-constrained minimum II (RecII) exactly and is
  shaped after the corresponding kernel (reduction chains, butterflies,
  stencils, ...). See DESIGN.md for the substitution rationale.
* :mod:`repro.workloads.suite` -- the benchmark registry (specs, loaders,
  paper reference values).
"""

from repro.workloads.running_example import running_example_dfg
from repro.workloads.suite import (
    BenchmarkSpec,
    SPECS,
    benchmark_names,
    load_benchmark,
    spec,
)

__all__ = [
    "running_example_dfg",
    "BenchmarkSpec",
    "SPECS",
    "benchmark_names",
    "load_benchmark",
    "spec",
]
