"""Synthetic stand-ins for the 17 MiBench / Rodinia inner loops of Table III.

The paper extracts its DFGs from LLVM IR of pragma-annotated innermost
loops. Without that toolchain we generate, for every benchmark, a DFG that
matches the two quantities Table III actually depends on:

* the **node count** reported in the paper (column "DFG Nodes"), and
* the **recurrence-constrained minimum II** (RecII), derived from the
  paper's mII columns (``mII = max(ceil(nodes / PEs), RecII)``),

and whose structure is shaped after the kernel it stands in for:

* a *recurrence chain* of length RecII (the loop-carried dependence cycle:
  a CRC/hash state update, an accumulator, ...),
* *feeder* logic (reduction trees or serial chains) producing the values the
  recurrence consumes, and
* a short *sink* chain consuming recurrence results (address computations /
  stores of the original loops).

Every generated node's in-degree matches its opcode arity, so the DFGs are
fully executable by the simulators in :mod:`repro.sim`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.arch.isa import Opcode
from repro.graphs.dfg import DFG


@dataclass(frozen=True)
class OpcodeTheme:
    """Opcode palette used to decorate a generated kernel."""

    leaf: Sequence[Opcode] = (Opcode.INPUT, Opcode.CONST)
    unary: Sequence[Opcode] = (Opcode.ABS, Opcode.NOT, Opcode.NEG)
    binary: Sequence[Opcode] = (Opcode.ADD, Opcode.XOR, Opcode.MUL)
    ternary: Sequence[Opcode] = (Opcode.SELECT,)


_THEMES: Dict[str, OpcodeTheme] = {
    "crypto": OpcodeTheme(binary=(Opcode.XOR, Opcode.AND, Opcode.ADD, Opcode.OR),
                          unary=(Opcode.NOT, Opcode.ABS)),
    "dsp": OpcodeTheme(binary=(Opcode.MUL, Opcode.ADD, Opcode.SUB),
                       unary=(Opcode.NEG, Opcode.ABS)),
    "integer": OpcodeTheme(binary=(Opcode.ADD, Opcode.SUB, Opcode.AND, Opcode.SHL),
                           unary=(Opcode.NOT, Opcode.NEG)),
    "stencil": OpcodeTheme(binary=(Opcode.ADD, Opcode.MUL, Opcode.MAX, Opcode.MIN),
                           unary=(Opcode.ABS, Opcode.NEG)),
    "compare": OpcodeTheme(binary=(Opcode.MAX, Opcode.MIN, Opcode.SUB, Opcode.ADD),
                           unary=(Opcode.ABS, Opcode.NEG)),
}


class _KernelBuilder:
    """Incremental construction helper keeping in-degrees consistent."""

    def __init__(self, name: str, theme: OpcodeTheme, seed: int) -> None:
        self.dfg = DFG(name=name)
        self.theme = theme
        self.rng = random.Random(seed)
        self._in_degree: Dict[int, int] = {}
        self._counter = 0

    # -- node creation -------------------------------------------------- #
    def _next_value(self) -> int:
        self._counter += 1
        return (self._counter * 37 + 11) % 251 + 1

    def leaf(self) -> int:
        opcode = self.rng.choice(list(self.theme.leaf))
        node = self.dfg.add_node(opcode=opcode, value=self._next_value())
        self._in_degree[node.id] = 0
        return node.id

    def op(self, operands: Sequence[int], loop_carried_operands: int = 0) -> int:
        """Create a node consuming ``operands`` (data) now; loop-carried
        operands are connected later and accounted for in the arity."""
        total_arity = len(operands) + loop_carried_operands
        if total_arity == 0:
            return self.leaf()
        if total_arity == 1:
            opcode = self.rng.choice(list(self.theme.unary))
        elif total_arity == 2:
            opcode = self.rng.choice(list(self.theme.binary))
        else:
            opcode = self.theme.ternary[0]
        node = self.dfg.add_node(opcode=opcode, value=self._next_value())
        self._in_degree[node.id] = total_arity
        for index, operand in enumerate(operands):
            self.dfg.add_data_edge(operand, node.id, operand_index=index)
        return node.id

    def connect_loop_carried(self, src: int, dst: int, distance: int = 1) -> None:
        operand_index = len(self.dfg.in_edges(dst))
        self.dfg.add_loop_carried_edge(src, dst, distance=distance,
                                       operand_index=operand_index)

    # -- composite structures -------------------------------------------- #
    def reduction_tree(self, budget: int, width: int = 4) -> int:
        """Build a bounded-width reduction with exactly ``budget`` nodes.

        ``width`` independent chains are merged pairwise by ``width - 1``
        combine nodes. Bounding the width keeps the instruction-level
        parallelism of the generated kernels comparable to real inner loops
        (and in particular schedulable on a 2x2 CGRA without extending the
        schedule horizon). Returns the root node.
        """
        if budget < 1:
            raise ValueError("tree budget must be >= 1")
        if budget <= 2:
            return self.serial_chain(budget)
        width = max(2, min(width, (budget + 1) // 2))
        merges = width - 1
        chain_budget = budget - merges
        base = chain_budget // width
        lengths = [base] * width
        for index in range(chain_budget - base * width):
            lengths[index] += 1
        roots = [self.serial_chain(length) for length in lengths if length > 0]
        while len(roots) > 1:
            left = roots.pop(0)
            right = roots.pop(0)
            roots.append(self.op([left, right]))
        return roots[0]

    def serial_chain(self, budget: int, head: Optional[int] = None) -> int:
        """Build a serial chain of ``budget`` nodes; returns the last node."""
        if budget < 1:
            raise ValueError("chain budget must be >= 1")
        current = head
        created = 0
        if current is None:
            current = self.leaf()
            created = 1
        while created < budget:
            current = self.op([current])
            created += 1
        return current


@dataclass(frozen=True)
class KernelShape:
    """Structural recipe of one synthetic benchmark kernel.

    Attributes:
        num_nodes: total node count (matches the paper).
        rec_ii: target recurrence II (length of the loop-carried cycle).
        feeder_style: ``"tree"`` (reduction), ``"chain"`` (serial) or
            ``"split"`` (several trees attached along the recurrence).
        sink_nodes: how many of the nodes form the output/sink chain.
        theme: opcode palette name.
        seed: RNG seed for opcode/selection choices (structure is
            deterministic given the other fields).
    """

    num_nodes: int
    rec_ii: int
    feeder_style: str = "tree"
    sink_nodes: int = 2
    theme: str = "integer"
    seed: int = 0


def build_kernel(name: str, shape: KernelShape) -> DFG:
    """Materialise a benchmark DFG from its :class:`KernelShape`."""
    if shape.rec_ii < 2:
        raise ValueError("recurrence length must be >= 2")
    if shape.num_nodes < shape.rec_ii + 1:
        raise ValueError("node budget too small for the recurrence")
    builder = _KernelBuilder(name, _THEMES[shape.theme], shape.seed)

    extras = shape.num_nodes - shape.rec_ii
    sink_budget = min(shape.sink_nodes, max(0, extras - 1))
    feeder_budget = extras - sink_budget

    # ------------------------------------------------------------------ #
    # Feeders: values consumed by the recurrence.
    # ------------------------------------------------------------------ #
    feeder_roots: List[int] = []
    if feeder_budget > 0:
        if shape.feeder_style == "chain":
            feeder_roots.append(builder.serial_chain(feeder_budget))
        elif shape.feeder_style == "split":
            pieces = min(3, shape.rec_ii, feeder_budget)
            base = feeder_budget // pieces
            budgets = [base] * pieces
            budgets[0] += feeder_budget - base * pieces
            feeder_roots.extend(builder.reduction_tree(b) for b in budgets if b > 0)
        else:  # "tree"
            feeder_roots.append(builder.reduction_tree(feeder_budget))

    # ------------------------------------------------------------------ #
    # Recurrence cycle of length rec_ii.
    # ------------------------------------------------------------------ #
    cycle: List[int] = []
    for position in range(shape.rec_ii):
        operands: List[int] = []
        if position > 0:
            operands.append(cycle[-1])
        # attach feeder roots spread along the cycle
        for root_index, root in enumerate(feeder_roots):
            if root_index % shape.rec_ii == position:
                operands.append(root)
        loop_carried = 1 if position == 0 else 0
        cycle.append(builder.op(operands, loop_carried_operands=loop_carried))
    builder.connect_loop_carried(cycle[-1], cycle[0], distance=1)

    # ------------------------------------------------------------------ #
    # Sinks: a short chain consuming the recurrence output.
    # ------------------------------------------------------------------ #
    if sink_budget > 0:
        current = cycle[-1]
        for index in range(sink_budget):
            if index == 0 and shape.rec_ii >= 3:
                current = builder.op([current, cycle[shape.rec_ii // 2]])
            else:
                current = builder.op([current])

    dfg = builder.dfg
    if dfg.num_nodes != shape.num_nodes:
        raise AssertionError(
            f"kernel {name}: built {dfg.num_nodes} nodes, expected {shape.num_nodes}"
        )
    dfg.validate()
    return dfg
